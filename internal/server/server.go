// Package server implements szd, the compression daemon: the codec
// registry served over HTTP with streaming request/response bodies and
// admission control, so remote producers (simulation ranks, ingest
// pipelines, CLI users) share a resource-governed compression fleet
// instead of linking the library.
//
// Endpoints:
//
//	POST /v1/compress?codec=sz14&dims=...&abs=...   raw samples in, stream out
//	POST /v1/decompress[?codec=...]                 stream in (magic auto-detect), raw samples out
//	GET  /v1/codecs                                 registered codec names
//	GET|POST /v1/inspect                            stream in, container metadata out (JSON)
//	GET|POST /v1/slabs                              blocked container in, footer index out (JSON)
//	GET|POST /v1/slab/{i | lo-hi}                   blocked container in, raw samples of that slab range out
//	GET  /healthz                                   200 ok / 503 draining
//	GET  /metrics                                   text exposition (szd_* series)
//
// Codec parameters travel as query values (keys match the sz CLI flags)
// with X-Sz-<key> headers as a fallback. Bodies are chunked-streamed in
// both directions; the blocked codec flows through with O(slab) server
// memory. Overload is rejected fast — 429 with Retry-After when the
// in-flight byte budget or worker pool is exhausted, 503 while draining —
// rather than queued; see internal/server/governor.go.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/scratch"
	"repro/internal/store"
)

// Config sizes the daemon's resource governance.
type Config struct {
	// MaxInflightBytes is the admission byte budget: an estimate of the
	// peak memory all in-flight requests may pin, beyond which new
	// requests get 429. 0 means the 1 GiB default; negative disables
	// the budget.
	MaxInflightBytes int64
	// MaxRequestBytes caps a single request body (413 beyond it).
	// 0 means the 1 GiB default; negative disables the cap.
	MaxRequestBytes int64
	// Workers is the worker-pool size shared across requests, including
	// the blocked writer's internal parallelism. 0 sizes the pool at
	// 4 x GOMAXPROCS (streaming requests spend much of their life in
	// I/O wait, so modest CPU oversubscription keeps the cores busy).
	Workers int
	// Store, when non-nil, persists finished containers content-addressed
	// by their SHA-256 (the response ETag) and serves digest-referenced
	// reads from the mmap'd entries. The caller opens it (cmd/szd wires
	// -store-dir/-store-bytes) and owns its lifetime.
	Store *store.Store
	// PreferredStreams is the interleaved sub-stream count /v1/codecs
	// advertises for `sz c -streams auto` clients; 0 means 4, the
	// count BENCH_6 found saturating single-core decode ILP.
	PreferredStreams int
	// SlowThreshold is the total-duration floor above which a finished
	// request is logged structured (slog) with its stage breakdown;
	// <= 0 disables slow-request logging. cmd/szd wires -slow-ms.
	SlowThreshold time.Duration
	// TraceRingSize is how many finished traces /debug/traces retains
	// (0 = obs.DefaultRingSize).
	TraceRingSize int
	// TenantWeights assigns admission weights to tenant names (the
	// API-key prefix up to the first '.'). Unlisted tenants weigh 1.
	// Under contention each tenant is held to budget x w/sum(active w);
	// below the contention watermark admission is work-conserving.
	TenantWeights map[string]float64
	// QoS tunes the adaptive admission controller; zero-valued fields
	// derive from MaxInflightBytes and Workers. The controller only
	// acts when its loop runs — StartQoS (cmd/szd wires -qos-interval)
	// or explicit TickQoS calls; otherwise the budget and worker pool
	// stay at their configured values.
	QoS qos.Config
}

const (
	defaultInflightBytes = 1 << 30
	defaultRequestBytes  = 1 << 30
	// unknownLengthCharge is the admission charge for chunked uploads
	// that declare no length at all (no Content-Length, no
	// X-Sz-Content-Length hint) when the per-request cap is disabled.
	unknownLengthCharge = 64 << 20
	// streamCopyBuffer is the io.Copy buffer for streaming bodies.
	streamCopyBuffer = 256 << 10
)

func (c Config) withDefaults() Config {
	if c.MaxInflightBytes == 0 {
		c.MaxInflightBytes = defaultInflightBytes
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = defaultRequestBytes
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.GOMAXPROCS(0)
	}
	if c.PreferredStreams <= 0 {
		c.PreferredStreams = 4
	}
	return c
}

// Server is the szd daemon's HTTP surface plus its governor, QoS
// controller, metrics, and trace recorder.
type Server struct {
	cfg Config
	gov *governor
	met *metrics
	rec *obs.Recorder
	mux *http.ServeMux

	// qosc is the adaptive admission controller; qosMu serializes
	// Tick against State reads (/debug/qos, /v1/limits, gauges).
	// adaptive is false when the byte budget is disabled — there is
	// nothing to steer.
	qosc         *qos.Controller
	qosMu        sync.Mutex
	prevSheds    int64
	adaptive     bool
	retryAfterMS atomic.Int64
}

// New builds a Server from cfg (zero value = defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	gov := newGovernor(cfg.MaxInflightBytes, cfg.Workers, cfg.TenantWeights)
	qcfg := cfg.QoS
	if qcfg.MaxBudget <= 0 && cfg.MaxInflightBytes > 0 {
		qcfg.MaxBudget = cfg.MaxInflightBytes
	}
	if qcfg.InitialBudget <= 0 && cfg.MaxInflightBytes > 0 {
		qcfg.InitialBudget = cfg.MaxInflightBytes
	}
	if qcfg.MaxWorkers <= 0 {
		qcfg.MaxWorkers = cfg.Workers
	}
	if qcfg.MinWorkers <= 0 {
		qcfg.MinWorkers = cfg.Workers / 4
	}
	s := &Server{
		cfg:      cfg,
		gov:      gov,
		met:      newMetrics(gov, cfg.Store),
		rec:      obs.NewRecorder(cfg.TraceRingSize, cfg.SlowThreshold, nil),
		mux:      http.NewServeMux(),
		qosc:     qos.New(qcfg),
		adaptive: cfg.MaxInflightBytes > 0,
	}
	s.retryAfterMS.Store(1000) // static default until the QoS loop ticks
	// Streaming endpoints deliver Server-Timing as a declared trailer
	// (the timings do not exist when the response header flushes);
	// buffered ones carry it as a plain header.
	s.mux.HandleFunc(api.PathCompress, s.method(http.MethodPost, s.withObs("compress", true, s.handleCompress)))
	s.mux.HandleFunc(api.PathDecompress, s.withObs("decompress", true, s.handleDecompress)) // POST; GET for digest-referenced reads
	s.mux.HandleFunc(api.PathCodecs, s.method(http.MethodGet, s.withObs("codecs", false, s.handleCodecs)))
	s.mux.HandleFunc(api.PathInspect, s.withObs("inspect", false, s.handleInspect)) // GET-with-body or POST
	s.mux.HandleFunc(api.PathSlabs, s.withObs("slabs", false, s.handleSlabs))       // GET-with-body or POST
	s.mux.HandleFunc(api.PathSlabPrefix, s.withObs("slab", true, s.handleSlab))     // GET-with-body or POST
	s.mux.HandleFunc(api.PathContainerPrefix, s.withObs("container", false, s.handleContainer))
	s.mux.HandleFunc(api.PathContainers, s.method(http.MethodGet, s.withObs("containers", false, s.handleContainers)))
	s.mux.HandleFunc(api.PathLimits, s.method(http.MethodGet, s.handleLimits))
	s.mux.HandleFunc(api.PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(api.PathMetrics, s.method(http.MethodGet, s.handleMetrics))
	s.mux.Handle(api.PathDebugTraces, s.rec.Ring)
	s.mux.HandleFunc(api.PathDebugQOS, s.method(http.MethodGet, s.handleDebugQoS))
	s.met.registerQoS(s)
	return s
}

// TickQoS runs one control-loop iteration: it snapshots the signal
// taps (in-flight bytes, shed delta, worker saturation, the fast/slow
// latency EWMAs), folds them through the AIMD controller, and writes
// the resulting budget, worker clamp, and Retry-After back into the
// admission path. Exposed so tests can drive the loop deterministically;
// production pacing comes from StartQoS.
func (s *Server) TickQoS() qos.State {
	s.qosMu.Lock()
	defer s.qosMu.Unlock()
	if !s.adaptive {
		return s.qosc.State()
	}
	sheds := s.gov.sheds.Load()
	st := s.qosc.Tick(qos.Signals{
		InflightBytes: s.gov.inflight.Load(),
		ShedDelta:     sheds - s.prevSheds,
		BusyWorkers:   s.gov.busyWorkers(),
		PoolSize:      s.gov.poolSize,
		FastLatency:   s.met.fastLat.Value(),
		SlowLatency:   s.met.slowLat.Value(),
	})
	s.prevSheds = sheds
	s.gov.setBudget(st.BudgetBytes)
	s.gov.setWorkerClamp(st.Workers)
	s.retryAfterMS.Store(st.RetryAfter.Milliseconds())
	return st
}

// StartQoS runs the control loop at the given cadence until the
// returned stop function is called. interval <= 0 starts nothing.
func (s *Server) StartQoS(interval time.Duration) (stop func()) {
	if interval <= 0 || !s.adaptive {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.TickQoS()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// qosState reads the controller's last output without ticking it.
func (s *Server) qosState() qos.State {
	s.qosMu.Lock()
	defer s.qosMu.Unlock()
	return s.qosc.State()
}

// withObs is the tracing middleware: it opens (or continues, via an
// inbound traceparent from the router) the request's trace, echoes the
// request ID, exports the finished trace as Server-Timing, feeds the
// per-stage histograms, and hands the trace to the recorder (ring +
// slow-request log). Handlers reach the trace through the context.
func (s *Server) withObs(endpoint string, streaming bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := obs.StartTrace(endpoint, r.Header.Get("Traceparent"), r.Header.Get(api.HeaderRequestID))
		w.Header().Set(api.HeaderRequestID, t.RequestID)
		if streaming {
			w.Header().Add("Trailer", "Server-Timing")
		}
		ow := &obsWriter{ResponseWriter: w, t: t, streaming: streaming}
		// Deferred so an aborted stream (http.ErrAbortHandler) still
		// records its trace on the way out.
		defer func() {
			status := ow.status
			if status == 0 {
				status = http.StatusOK
			}
			t.Finish(status)
			if streaming {
				w.Header().Set("Server-Timing", t.ServerTiming())
			}
			s.met.recordStages(t)
			s.rec.Done(t)
		}()
		// Tenant identity is derived from the API key, never from the
		// tenant header itself — an inbound X-Sz-Tenant is stripped so
		// a client cannot spoof its way into another tenant's share.
		r.Header.Del(api.HeaderTenant)
		ti, err := tenantFromRequest(r)
		if err != nil {
			s.reject(ow, endpoint, "", http.StatusBadRequest, err, time.Now())
			return
		}
		ctx := obs.NewContext(r.Context(), t)
		ctx = context.WithValue(ctx, tenantCtxKey{}, ti)
		h(ow, r.WithContext(ctx))
	}
}

// tenantInfo is a request's resolved admission identity.
type tenantInfo struct {
	name string
	pri  api.Priority
}

type tenantCtxKey struct{}

// tenantFromRequest validates the API key and priority headers.
// Malformed values are a 400 with code bad_tenant — rejected before
// any admission work, so oversized or hostile keys cost nothing.
func tenantFromRequest(r *http.Request) (tenantInfo, error) {
	tenant, err := api.TenantFromKey(r.Header.Get(api.HeaderAPIKey))
	if err != nil {
		return tenantInfo{}, &api.Error{
			Status: http.StatusBadRequest, Code: api.CodeBadTenant,
			Message: "invalid " + api.HeaderAPIKey + ": " + err.Error(),
		}
	}
	pri, err := api.ParsePriority(r.Header.Get(api.HeaderPriority))
	if err != nil {
		return tenantInfo{}, &api.Error{
			Status: http.StatusBadRequest, Code: api.CodeBadTenant,
			Message: "invalid " + api.HeaderPriority + ": " + err.Error(),
		}
	}
	return tenantInfo{name: tenant, pri: pri}, nil
}

// tenantOf returns the request's admission identity (default tenant,
// interactive) when the middleware did not attach one.
func tenantOf(ctx context.Context) tenantInfo {
	if ti, ok := ctx.Value(tenantCtxKey{}).(tenantInfo); ok {
		return ti
	}
	return tenantInfo{name: api.DefaultTenant}
}

// obsWriter captures the response status for the trace and, on buffered
// routes, injects the Server-Timing header at WriteHeader time (every
// span is closed by then — buffered handlers do all their work before
// the first response byte).
type obsWriter struct {
	http.ResponseWriter
	t         *obs.Trace
	status    int
	streaming bool
}

func (ow *obsWriter) WriteHeader(code int) {
	if ow.status == 0 {
		ow.status = code
		if !ow.streaming {
			if v := ow.t.ServerTiming(); v != "" {
				ow.Header().Set("Server-Timing", v)
			}
		}
	}
	ow.ResponseWriter.WriteHeader(code)
}

func (ow *obsWriter) Write(b []byte) (int, error) {
	if ow.status == 0 {
		ow.WriteHeader(http.StatusOK)
	}
	return ow.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer
// (handlers enable full duplex through this wrapper).
func (ow *obsWriter) Unwrap() http.ResponseWriter { return ow.ResponseWriter }

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips the server into draining: /healthz turns 503 so load
// balancers stop routing here, and every new request is rejected with
// 503 while in-flight streams run to completion (the caller then calls
// http.Server.Shutdown to wait for them).
func (s *Server) StartDrain() { s.gov.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.gov.draining.Load() }

func (s *Server) method(want string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != want {
			w.Header().Set("Allow", want)
			s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", want))
			return
		}
		h(w, r)
	}
}

// writeError emits the unified api.Error envelope. Safe only before
// the response body has started streaming. Retryable rejections carry
// the QoS controller's current Retry-After hint; the request ID rides
// along when the tracing middleware already stamped the response.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	e := api.Wrap(status, err)
	switch {
	case errors.Is(err, errTenantShare):
		e.Code = api.CodeTenantOverShare
	case errors.Is(err, errDraining):
		e.Code = api.CodeDraining
	}
	if e.Temporary() && e.RetryAfterMS == 0 {
		e.RetryAfterMS = s.retryAfterMS.Load()
	}
	if e.RequestID == "" {
		e.RequestID = w.Header().Get(api.HeaderRequestID)
	}
	api.WriteError(w, e)
}

func admitStatus(err error) int {
	switch {
	case errors.Is(err, errDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, errTooLarge):
		return http.StatusRequestEntityTooLarge
	default: // errBudget, errWorkers, errTenantShare
		return http.StatusTooManyRequests
	}
}

// streamErrStatus maps a mid-body error to its response status:
// governance errors keep their 413/429 semantics (429 is the retryable
// one — a blanket 400 would stop clients from backing off), everything
// else is the client's malformed input.
func streamErrStatus(err error) int {
	if errors.Is(err, errBudget) || errors.Is(err, errTooLarge) {
		return admitStatus(err)
	}
	return http.StatusBadRequest
}

func requestValues(r *http.Request) url.Values {
	v := r.URL.Query()
	// Every wire parameter is accepted in the query string and, as
	// X-Sz-<key>, in headers (query wins).
	for _, key := range codec.WireKeys {
		if v.Get(key) != "" {
			continue
		}
		if hv := r.Header.Get(api.ParamHeaderPrefix + key); hv != "" {
			v.Set(key, hv)
		}
	}
	return v
}

// declaredLength resolves the request's declared body size: the
// Content-Length when present, else the X-Sz-Content-Length hint chunked
// senders can supply so admission charges them accurately. -1 = unknown.
func declaredLength(r *http.Request) int64 {
	if r.ContentLength >= 0 {
		return r.ContentLength
	}
	if h := r.Header.Get(api.HeaderContentLength); h != "" {
		if n, err := strconv.ParseInt(h, 10, 64); err == nil && n >= 0 {
			return n
		}
	}
	return -1
}

func dtypeSize(p codec.Params) int64 {
	if p.DType == grid.Float32 {
		return 4
	}
	return 8 // grid.Float64 and the zero-value default
}

// satMul multiplies non-negative int64s, saturating at MaxInt64. Every
// admission-charge product goes through it: hostile dims (billions per
// axis) must saturate into a rejectable charge, never wrap negative —
// a negative reservation would ADD budget headroom.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// rawBytesFor returns prod(dims) x esz, saturating on overflow.
func rawBytesFor(dims []int, esz int64) int64 {
	n := esz
	for _, d := range dims {
		n = satMul(n, int64(d))
	}
	return n
}

// unknownCharge is the admission charge for length-less uploads.
func (s *Server) unknownCharge() int64 {
	if s.cfg.MaxRequestBytes > 0 {
		return s.cfg.MaxRequestBytes
	}
	return unknownLengthCharge
}

// compressCharge and decompressCharge live in charge.go with the
// calibration constants they are built from.

// admit pre-checks that the charge can ever fit the budget — a request
// whose memory estimate exceeds the whole budget gets a permanent 413,
// not a retryable 429 that clients would back off against forever —
// then takes the grant from the governor on behalf of the request's
// tenant. The pre-check uses the configured ceiling, not the live
// adaptive budget: a request that fits the configured budget but not
// the current one is a retryable 429. The "admission" span covers both
// the budget reservation and the worker-token acquisition.
func (s *Server) admit(ctx context.Context, t *obs.Trace, charge int64, wantWorkers int) (*grant, int, error) {
	defer t.StartSpan("admission").End()
	if s.cfg.MaxInflightBytes > 0 && charge > s.cfg.MaxInflightBytes {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%w: estimated memory %d exceeds the in-flight budget %d",
				errTooLarge, charge, s.cfg.MaxInflightBytes)
	}
	ti := tenantOf(ctx)
	gr, err := s.gov.admit(ti.name, ti.pri, charge, wantWorkers)
	if err != nil {
		return nil, admitStatus(err), err
	}
	return gr, 0, nil
}

// meteredReader counts request-body bytes and enforces the per-request
// cap. On buffered paths — where every body byte really pins memory —
// it also extends the grant's byte reservation when a stream outgrows
// its declared size (chunks of growQuantum scaled by the request's
// memory multiplier), aborting the request if the budget refuses.
// Streaming paths skip the growth metering: their memory is O(window)
// no matter how many bytes flow through.
type meteredReader struct {
	src       io.Reader
	gr        *grant
	n         int64 // bytes read
	meter     bool  // grow the reservation as bytes arrive (buffered paths)
	allowance int64 // bytes covered by the current reservation
	mult      int64 // memory charge per body byte (>= 1)
	limit     int64 // per-request cap; <= 0 unlimited
}

const growQuantum = 4 << 20

func (m *meteredReader) Read(p []byte) (int, error) {
	n, err := m.src.Read(p)
	m.n += int64(n)
	if m.limit > 0 && m.n > m.limit {
		return n, errTooLarge
	}
	for m.meter && m.n > m.allowance {
		if !m.gr.grow(satMul(growQuantum, m.mult)) {
			return n, fmt.Errorf("%w (stream exceeded its declared size)", errBudget)
		}
		m.allowance += growQuantum
	}
	return n, err
}

// mult is the endpoint's memory-per-body-byte model (3x for buffered
// f32 compress, 5x for buffered decompress, ...), passed explicitly so
// a spoofed declared length of 0 cannot collapse growth metering to 1x.
func newMeteredReader(src io.Reader, gr *grant, declared, charge, limit, mult int64, streaming bool) *meteredReader {
	allowance := declared
	if allowance < 0 {
		allowance = charge // unknown-length: the flat charge covers this many bytes
	}
	if mult < 1 {
		mult = 1
	}
	return &meteredReader{src: src, gr: gr, meter: !streaming, allowance: allowance, mult: mult, limit: limit}
}

// respWriter counts response bytes and remembers whether the body has
// started (after which errors can only abort the connection). discard
// swallows writes once a request is being aborted, so cleanup-time
// flushes from a codec writer emit nothing; it is atomic because the
// handler goroutine sets it while a blocked writer's emit goroutine may
// still be inside Write (n and wrote need no lock: Write is called by
// one goroutine at a time, and the handler only reads them after
// zw.Close joins that goroutine).
type respWriter struct {
	http.ResponseWriter
	n       int64
	wrote   bool
	discard atomic.Bool
}

func (rw *respWriter) Write(b []byte) (int, error) {
	if rw.discard.Load() {
		return len(b), nil
	}
	rw.wrote = true
	n, err := rw.ResponseWriter.Write(b)
	rw.n += int64(n)
	return n, err
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.FromContext(r.Context())
	vals := requestValues(r)
	name := vals.Get("codec")
	if name == "" {
		name = "sz14"
	}
	c, err := codec.Lookup(name)
	if err != nil {
		s.reject(w, "compress", name, http.StatusBadRequest, err, start)
		return
	}
	name = c.Name()
	p, err := codec.ParamsFromValues(vals)
	if err != nil {
		s.reject(w, "compress", name, http.StatusBadRequest, err, start)
		return
	}
	if len(p.Dims) == 0 && name != "gzip" {
		s.reject(w, "compress", name, http.StatusBadRequest,
			fmt.Errorf("missing dims (required to interpret the raw input)"), start)
		return
	}
	// The raw body for these dims cannot legally exceed the per-request
	// cap; reject absurd geometries (including int64-saturating ones)
	// before they reach the charge arithmetic.
	if rb := rawBytesFor(p.Dims, dtypeSize(p)); s.cfg.MaxRequestBytes > 0 && rb > s.cfg.MaxRequestBytes {
		s.reject(w, "compress", name, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%w: dims imply %d raw bytes, limit %d", errTooLarge, rb, s.cfg.MaxRequestBytes), start)
		return
	}

	declared := declaredLength(r)
	if s.cfg.MaxRequestBytes > 0 && declared > s.cfg.MaxRequestBytes {
		s.reject(w, "compress", name, http.StatusRequestEntityTooLarge, errTooLarge, start)
		return
	}
	charge, streaming := s.compressCharge(name, declared, p)
	want := 1
	if name == "blocked" {
		want = p.Workers
		if want <= 0 {
			want = runtime.GOMAXPROCS(0)
		}
	}
	gr, status, err := s.admit(r.Context(), tr, charge, want)
	if err != nil {
		s.reject(w, "compress", name, status, err, start)
		return
	}
	defer gr.release()
	if name == "blocked" {
		// Share the pool: the container's internal parallelism is
		// clamped to the tokens this request was actually granted.
		p.Workers = gr.workers
	}
	if tr != nil {
		// Deep pipeline stages (per-slab Huffman codebook builds) report
		// into the trace; concurrent slab workers aggregate by name.
		p.Stages = tr.Observe
	}

	// Streaming codecs write response bytes while the request body is
	// still arriving; without full duplex, Go's HTTP/1 server reacts to
	// the first response flush by silently discarding 256 KiB of any
	// still-unread chunked body — corrupting the input mid-stream.
	http.NewResponseController(w).EnableFullDuplex()
	body := newMeteredReader(r.Body, gr, declared, charge, s.cfg.MaxRequestBytes, 1+8/dtypeSize(p), streaming)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(api.HeaderCodec, name)
	out := &respWriter{ResponseWriter: w}
	// The finished container is persisted content-addressed as it
	// streams out, and its digest — unknowable before the last byte —
	// travels back as an ETag trailer. Repeat readers then reference
	// the container by digest alone (see store.go).
	var sink io.Writer = out
	var tee *bestEffortPut
	if s.cfg.Store != nil {
		if put, perr := s.cfg.Store.NewPut(); perr == nil {
			tee = &bestEffortPut{p: put, t: tr}
			sink = io.MultiWriter(out, tee)
			w.Header().Add("Trailer", "Etag")
		}
	}
	zw, err := c.NewWriter(sink, p)
	if err != nil {
		if tee != nil {
			tee.abort()
		}
		s.reject(w, "compress", name, http.StatusBadRequest, err, start)
		return
	}
	cbuf := scratch.Bytes(streamCopyBuffer)
	defer scratch.PutBytes(cbuf)
	// The encode span covers the whole streaming copy: body read,
	// compression, and response writes (they interleave and cannot be
	// separated without buffering the stream).
	sp := tr.StartSpan("encode")
	_, err = io.CopyBuffer(zw, body, cbuf)
	if err == nil {
		err = zw.Close()
	} else {
		// The request is aborted, but the writer must still be closed
		// or the blocked container's worker/emit goroutines (and their
		// slab memory) leak for the daemon's lifetime. Discard its
		// output first so no trailer bytes reach the truncated
		// response.
		out.discard.Store(true)
		zw.Close()
	}
	sp.End()
	if tee != nil {
		if err == nil {
			if digest := tee.commit(); digest != "" {
				w.Header().Set("Etag", etagFor(digest))
			}
		} else {
			tee.abort()
		}
	}
	s.finishStream(w, out, "compress", name, body.n, err, start)
}

func (s *Server) handleDecompress(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := obs.FromContext(r.Context())
	vals := requestValues(r)
	p, err := codec.ParamsFromValues(vals)
	if err != nil {
		s.reject(w, "decompress", "", http.StatusBadRequest, err, start)
		return
	}
	// A digest-referenced read carries no body: the container comes off
	// the store's mmap. Plain decompress stays POST-only.
	if ent, done := s.openStoreEntry(w, r, "decompress", start); done {
		if ent != nil {
			s.serveDecompressFromStore(w, r, tr, ent, p, vals.Get("codec"), start)
		}
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST (or GET with ?digest=)"))
		return
	}
	declared := declaredLength(r)
	if s.cfg.MaxRequestBytes > 0 && declared > s.cfg.MaxRequestBytes {
		s.reject(w, "decompress", "", http.StatusRequestEntityTooLarge, errTooLarge, start)
		return
	}

	// Resolve the codec: forced via ?codec=, else detected from the
	// stream magic (peeking consumes nothing).
	br := newPeekReader(r.Body)
	var c codec.Codec
	if name := vals.Get("codec"); name != "" {
		if c, err = codec.Lookup(name); err != nil {
			s.reject(w, "decompress", name, http.StatusBadRequest, err, start)
			return
		}
	} else {
		prefix, _ := br.Peek(4)
		if c, err = codec.Detect(prefix); err != nil {
			s.reject(w, "decompress", "", http.StatusBadRequest,
				fmt.Errorf("%w; pass ?codec= explicitly", err), start)
			return
		}
	}
	name := c.Name()

	// Peek the stream header for the codecs whose geometry it reveals:
	// blocked (slab footprint) and sz14 (element count) charges come
	// from the data's own shape rather than a flat multiplier.
	var header []byte
	switch name {
	case "blocked":
		header, _ = br.Peek(blocked.MaxHeaderLen)
	case "sz14":
		header, _ = br.Peek(core.MaxHeaderLen)
	}
	charge, streaming := s.decompressCharge(name, declared, header)
	gr, status, err := s.admit(r.Context(), tr, charge, 1)
	if err != nil {
		s.reject(w, "decompress", name, status, err, start)
		return
	}
	defer gr.release()

	// See handleCompress: required so chunked request bodies survive
	// the first response flush on HTTP/1.
	http.NewResponseController(w).EnableFullDuplex()
	body := newMeteredReader(br, gr, declared, charge, s.cfg.MaxRequestBytes, 5, streaming)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(api.HeaderCodec, name)
	// Tee the container into the store as the decode consumes it: the
	// body's digest becomes the response's ETag trailer, and the next
	// read of this container can reference it with no upload at all.
	var src io.Reader = body
	var tee *bestEffortPut
	if s.cfg.Store != nil {
		if put, perr := s.cfg.Store.NewPut(); perr == nil {
			tee = &bestEffortPut{p: put, t: tr}
			src = io.TeeReader(body, tee)
			w.Header().Add("Trailer", "Etag")
		}
	}
	out := &respWriter{ResponseWriter: w}
	zr, err := c.NewReader(src, p)
	if err != nil {
		// Buffered codecs consume the whole body inside NewReader, so
		// governance errors (413/429) can surface here — keep their
		// retry semantics instead of blanketing them as 400.
		if tee != nil {
			tee.abort()
		}
		s.reject(w, "decompress", name, streamErrStatus(err), err, start)
		return
	}
	cbuf := scratch.Bytes(streamCopyBuffer)
	defer scratch.PutBytes(cbuf)
	sp := tr.StartSpan("decode")
	_, err = io.CopyBuffer(out, zr, cbuf)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	sp.End()
	if tee != nil {
		if err == nil {
			// Capture any container bytes the decoder did not need (the
			// stream is self-delimiting, trailing footer bytes may be
			// unread) so the stored digest matches the full body — the
			// same bytes the router hashed for ring placement.
			if _, derr := io.CopyBuffer(io.Discard, src, cbuf); derr == nil {
				if digest := tee.commit(); digest != "" {
					w.Header().Set("Etag", etagFor(digest))
				}
			} else {
				tee.abort()
			}
		} else {
			tee.abort()
		}
	}
	s.finishStream(w, out, "decompress", name, body.n, err, start)
}

// reject records and reports a request that failed before its response
// body started.
func (s *Server) reject(w http.ResponseWriter, endpoint, codecName string, status int, err error, start time.Time) {
	s.met.record(endpoint, codecName, status, 0, 0, time.Since(start))
	s.writeError(w, status, err)
}

// finishStream settles a streaming request: a clean finish records 200;
// an error before the first body byte still yields a proper error
// response; an error mid-stream can only abort the connection so the
// client sees a truncated transfer instead of silently corrupt data.
func (s *Server) finishStream(w http.ResponseWriter, out *respWriter, endpoint, codecName string, bytesIn int64, err error, start time.Time) {
	switch {
	case err == nil:
		s.met.record(endpoint, codecName, http.StatusOK, bytesIn, out.n, time.Since(start))
	case !out.wrote:
		s.reject(w, endpoint, codecName, streamErrStatus(err), err, start)
	default:
		s.met.record(endpoint, codecName, http.StatusInternalServerError, bytesIn, out.n, time.Since(start))
		panic(http.ErrAbortHandler)
	}
}

func (s *Server) handleCodecs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	w.Header().Set("Content-Type", "application/json")
	// preferred_streams is the daemon's advice for `sz c -streams auto`:
	// the interleaved sub-stream count it considers a good default for
	// containers that will be decoded here.
	json.NewEncoder(w).Encode(map[string]any{
		"codecs":            codec.Names(),
		"preferred_streams": s.cfg.PreferredStreams,
	})
	s.met.record("codecs", "", http.StatusOK, 0, 0, time.Since(start))
}

func (s *Server) handleInspect(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	declared := declaredLength(r)
	if s.cfg.MaxRequestBytes > 0 && declared > s.cfg.MaxRequestBytes {
		s.reject(w, "inspect", "", http.StatusRequestEntityTooLarge, errTooLarge, start)
		return
	}
	charge := declared
	if charge < 0 {
		charge = s.unknownCharge()
	}
	gr, status, err := s.admit(r.Context(), obs.FromContext(r.Context()), charge, 1)
	if err != nil {
		s.reject(w, "inspect", "", status, err, start)
		return
	}
	defer gr.release()
	body := newMeteredReader(r.Body, gr, declared, charge, s.cfg.MaxRequestBytes, 1, false)
	stream, err := readAllScratch(body, declared)
	defer scratch.PutBytes(stream)
	if err != nil {
		s.reject(w, "inspect", "", streamErrStatus(err), err, start)
		return
	}
	si, err := codec.InspectStream(stream)
	if err != nil {
		s.reject(w, "inspect", "", http.StatusBadRequest, err, start)
		return
	}
	resp, err := json.Marshal(si)
	if err != nil {
		s.reject(w, "inspect", si.Codec, http.StatusInternalServerError, err, start)
		return
	}
	resp = append(resp, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
	s.met.record("inspect", si.Codec, http.StatusOK, int64(len(stream)), int64(len(resp)), time.Since(start))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	if s.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, s.met.expose())
}

// limits assembles the live QoS state as the documented api.Limits
// shape (shared with the router's fleet aggregation).
func (s *Server) limits() api.Limits {
	st := s.qosState()
	lim := api.Limits{
		BudgetBytes:     s.gov.budget.Load(),
		MaxRequestBytes: s.cfg.MaxRequestBytes,
		Workers:         int(s.gov.clamp.Load()),
		RetryAfterMS:    s.retryAfterMS.Load(),
		Congested:       st.Congested,
		Priorities:      []string{api.Interactive.String(), api.Batch.String()},
		Tenants:         map[string]api.TenantLimits{},
	}
	for _, t := range s.gov.snapshotTenants() {
		lim.Tenants[t.name] = api.TenantLimits{
			Weight:        t.weight,
			ShareBytes:    t.share,
			InflightBytes: t.inflight,
			Admitted:      t.admitted,
			Rejected:      t.rejected,
		}
	}
	return lim
}

// handleLimits serves GET /v1/limits: the admission state a client can
// read before deciding how hard to push.
func (s *Server) handleLimits(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.limits())
}

// handleDebugQoS serves GET /debug/qos: the controller's full state —
// counters, baseline, bounds — for operators chasing a misbehaving
// control loop, a superset of what /v1/limits documents for clients.
func (s *Server) handleDebugQoS(w http.ResponseWriter, r *http.Request) {
	st := s.qosState()
	cfg := s.qosc.Config()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"adaptive": s.adaptive,
		"state":    st,
		"bounds": map[string]any{
			"min_budget_bytes":   cfg.MinBudget,
			"max_budget_bytes":   cfg.MaxBudget,
			"increase_bytes":     cfg.Increase,
			"decrease_factor":    cfg.Decrease,
			"congested_ticks":    cfg.CongestedTicks,
			"clear_ticks":        cfg.ClearTicks,
			"latency_ratio":      cfg.LatencyRatio,
			"min_workers":        cfg.MinWorkers,
			"max_workers":        cfg.MaxWorkers,
			"min_retry_after_ms": cfg.MinRetryAfter.Milliseconds(),
			"max_retry_after_ms": cfg.MaxRetryAfter.Milliseconds(),
		},
		"limits": s.limits(),
	})
}

// readAllScratch reads r to EOF into a scratch-pooled buffer, seeded
// from the declared length when known. The caller owns the result and
// recycles it with scratch.PutBytes when done (also on error: a partial
// buffer is still returned).
func readAllScratch(r io.Reader, declared int64) ([]byte, error) {
	hint := declared + 1 // +1 so an exact-size body EOFs without a growth step
	if declared < 0 || declared > 1<<30 {
		hint = 64 << 10
	}
	buf := scratch.Bytes(int(hint))[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

// peekReader is a minimal buffered reader exposing Peek without bulk
// read-ahead (a bufio.Reader would slurp 4 KiB+ past the magic, which
// the metered reader must account, not the buffer).
type peekReader struct {
	src  io.Reader
	head []byte
}

func newPeekReader(src io.Reader) *peekReader { return &peekReader{src: src} }

// Peek returns the next n bytes without consuming them; fewer when the
// stream is shorter.
func (pr *peekReader) Peek(n int) ([]byte, error) {
	for len(pr.head) < n {
		buf := make([]byte, n-len(pr.head))
		m, err := pr.src.Read(buf)
		pr.head = append(pr.head, buf[:m]...)
		if err != nil {
			return pr.head, err
		}
	}
	return pr.head[:n], nil
}

func (pr *peekReader) Read(p []byte) (int, error) {
	if len(pr.head) > 0 {
		n := copy(p, pr.head)
		pr.head = pr.head[n:]
		return n, nil
	}
	return pr.src.Read(p)
}
