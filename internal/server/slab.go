package server

// Slab range serving: the paper's random-access decompression pattern
// over HTTP. A blocked v2 container carries a seekable footer index, so
// a client holding the compressed stream can ask the daemon for any
// contiguous slab range without paying for a full decode:
//
//	GET|POST /v1/slabs       container in, footer index out (JSON)
//	GET|POST /v1/slab/{i}    container in, slab i's raw samples out
//	GET|POST /v1/slab/{lo-hi}  inclusive slab range, concatenated
//
// The container body still travels with the request (szd stores
// nothing); what the endpoint saves is decode work and response bytes —
// only the requested rows are reconstructed and returned.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/obs"
	"repro/internal/scratch"
)

// slabCharge estimates the memory a slab-range request pins: the whole
// container (buffered for footer access) plus the decoded range — one
// float64 working copy and the raw output per cell, with headroom for
// the per-worker slab reconstructions (24 B/cell total). The range
// geometry comes from the peeked, attacker-supplied header, so every
// product saturates.
func (s *Server) slabCharge(declared int64, header []byte, lo, hi int) int64 {
	base := declared
	if base < 0 {
		base = s.unknownCharge()
	}
	ci, err := blocked.ParseContainerHeader(header)
	if err != nil {
		return satMul(base, 2)
	}
	rowCells := int64(1)
	for _, d := range ci.Dims[1:] {
		rowCells = satMul(rowCells, int64(d))
	}
	rows := satMul(int64(hi-lo+1), int64(ci.SlabRows))
	if rows > int64(ci.Dims[0]) {
		rows = int64(ci.Dims[0])
	}
	return base + satMul(satMul(rows, rowCells), 24)
}

func (s *Server) handleSlabs(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	// Digest-referenced: serve the index off the store's mmap'd entry.
	if ent, done := s.openStoreEntry(w, r, "slabs", start); done {
		if ent != nil {
			s.serveSlabsFromStore(w, r, ent, start)
		}
		return
	}
	stream, gr, ok := s.readContainer(w, r, "slabs", nil, start)
	if !ok {
		return
	}
	defer gr.release()
	defer scratch.PutBytes(stream)
	// The body's digest is this response's ETag: a repeat reader that
	// still holds the index answers in a header round-trip, before any
	// footer walk happens.
	etag := etagFor(bodyDigest(stream))
	if ifNoneMatchHas(r, etag) {
		s.notModified(w, "slabs", "blocked", etag, start)
		return
	}
	si, err := codec.SlabIndexOf(stream)
	if err != nil {
		s.reject(w, "slabs", "", http.StatusBadRequest, err, start)
		return
	}
	// A validated container is worth keeping: persist it so the next
	// read can reference the digest instead of re-uploading (tier-2
	// fill through the body path).
	s.storePut(stream)
	w.Header().Set("Etag", etag)
	resp, err := json.Marshal(si)
	if err != nil {
		s.reject(w, "slabs", "blocked", http.StatusInternalServerError, err, start)
		return
	}
	resp = append(resp, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
	s.met.record("slabs", "blocked", http.StatusOK, int64(len(stream)), int64(len(resp)), time.Since(start))
}

func (s *Server) handleSlab(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	spec := strings.TrimPrefix(r.URL.Path, api.PathSlabPrefix)
	lo, hi, err := codec.ParseSlabSpec(spec)
	if err != nil {
		s.reject(w, "slab", "", http.StatusBadRequest, err, start)
		return
	}
	// Digest-referenced: mmap'd entry, no upload, no CRC walk, and the
	// compressed extent zero-copy when the client accepts it.
	if ent, done := s.openStoreEntry(w, r, "slab", start); done {
		if ent != nil {
			s.serveSlabFromStore(w, r, ent, lo, hi, start)
		}
		return
	}
	rng := [2]int{lo, hi}
	stream, gr, ok := s.readContainer(w, r, "slab", &rng, start)
	if !ok {
		return
	}
	defer gr.release()
	defer scratch.PutBytes(stream)
	// Conditional check before any decode: the body just traveled, but
	// the decode work (the expensive part) is still skippable.
	etag := etagFor(bodyDigest(stream))
	if ifNoneMatchHas(r, etag) {
		s.notModified(w, "slab", "blocked", etag, start)
		return
	}
	if wantsCompressedSlab(r) {
		// One pass: Inspect parses and CRC-verifies the container (the
		// bytes are untrusted on the body path), then the extent is a
		// pure slice.
		ix, err := blocked.Inspect(stream)
		if err != nil {
			s.reject(w, "slab", "blocked", http.StatusBadRequest, err, start)
			return
		}
		if !ix.SharedCodebook() {
			s.storePut(stream)
			w.Header().Set("Etag", etag)
			s.serveSlabExtent(w, obs.FromContext(r.Context()), stream, ix, lo, hi, int64(len(stream)), start)
			return
		}
		// Shared-codebook containers have no self-contained extent;
		// fall through to decoded samples.
	}
	// One pass: DecompressSlabRange parses and CRC-verifies the
	// container itself, so no separate index parse runs first (on large
	// containers the footer walk and checksum dominate non-decode cost).
	sp := obs.FromContext(r.Context()).StartSpan("decode")
	arr, dt, err := blocked.DecompressSlabRange(stream, lo, hi)
	sp.End()
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, blocked.ErrSlabRange) {
			// A well-formed spec beyond the container's extent is the
			// range version of a seek past EOF, not a malformed request.
			status = http.StatusRequestedRangeNotSatisfiable
		}
		s.reject(w, "slab", "blocked", status, err, start)
		return
	}
	s.storePut(stream)
	w.Header().Set("Etag", etag)
	s.writeSlabRaw(w, arr, dt, lo, hi, int64(len(stream)), start)
}

// readContainer admits and buffers the request body for the slab
// endpoints. rng, when set, lets the admission charge cover the decode
// footprint of that slab range (peeked from the container header); nil
// charges the buffered body alone. On ok the caller owns the returned
// grant (release it when the decode is done); on !ok the response has
// already been written.
func (s *Server) readContainer(w http.ResponseWriter, r *http.Request, endpoint string, rng *[2]int, start time.Time) ([]byte, *grant, bool) {
	declared := declaredLength(r)
	if s.cfg.MaxRequestBytes > 0 && declared > s.cfg.MaxRequestBytes {
		s.reject(w, endpoint, "", http.StatusRequestEntityTooLarge, errTooLarge, start)
		return nil, nil, false
	}
	br := newPeekReader(r.Body)
	charge := declared
	if charge < 0 {
		charge = s.unknownCharge()
	}
	if rng != nil {
		header, _ := br.Peek(blocked.MaxHeaderLen)
		charge = s.slabCharge(declared, header, rng[0], rng[1])
	}
	gr, status, err := s.admit(r.Context(), obs.FromContext(r.Context()), charge, 1)
	if err != nil {
		s.reject(w, endpoint, "", status, err, start)
		return nil, nil, false
	}
	body := newMeteredReader(br, gr, declared, charge, s.cfg.MaxRequestBytes, 1, false)
	stream, err := readAllScratch(body, declared)
	if err != nil {
		scratch.PutBytes(stream)
		gr.release()
		s.reject(w, endpoint, "", streamErrStatus(err), err, start)
		return nil, nil, false
	}
	return stream, gr, true
}
