//go:build race

package server

// raceEnabled reports whether the race detector is active; its
// instrumentation inflates allocation accounting, so measurement-based
// calibration tests skip themselves under -race.
const raceEnabled = true
