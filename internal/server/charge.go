package server

// Admission-charge calibration. The in-flight byte budget is only as
// good as its per-request memory estimates; these constants replace the
// original guesswork multipliers with numbers measured from allocation
// profiles (TestAdmissionChargeCalibration re-measures and fails if the
// estimates drift outside 2x of reality).
//
// Measured 2026-07-28 on linux/amd64 with the scratch-pooled hot path
// (`go test -run TestAdmissionChargeCalibration -v ./internal/server`),
// Hurricane-shaped float32 fields:
//
//	compress  sz14     measured 11.7x the raw body   (charged 11x = 1+40/4)
//	compress  gzip     measured 0.81 MiB             (charged 1 MiB)
//	compress  blocked  measured 31.7 B/cell in the pipeline (charged 36)
//	decompress sz14    measured 28.4 B/element       (charged 24+esz)
//	decompress gzip    measured 0.11 MiB             (charged 0.19 MiB)
import (
	"runtime"

	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/core"
)

const (
	// gzipCompressCharge covers the flate window and hash tables
	// (measured ~0.81 MiB; the stream itself never buffers).
	gzipCompressCharge = 1 << 20
	// gzipDecompressCharge covers the inflate window and dictionaries
	// (measured ~0.11 MiB).
	gzipDecompressCharge = 192 << 10

	// bufferedCompressOverheadPerElem is what a buffered compress pins
	// per element beyond the raw body: the widened float64 array (8),
	// the quantization-code array (8), the reconstruction array (8),
	// and the bitstream/output buffering tail (measured ~16 together).
	bufferedCompressOverheadPerElem = 40

	// blockedSlabOverheadPerCell is what each in-flight slab of the
	// streaming blocked writer pins per cell beyond the raw parse
	// buffer: the float64 slab (8), codes (8), reconstruction (8), and
	// payload/stream buffering (~4).
	blockedSlabOverheadPerCell = 28

	// bufferedDecompressOverheadPerElem is what an sz14 decompress pins
	// per reconstructed element: the code array (8), the output array
	// (8), and raw-output serialization buffering (~8 + element size).
	bufferedDecompressOverheadPerElem = 24

	// bufferedDecompressFallbackMult stands in for buffered codecs whose
	// headers do not reveal the element count (fpzip, zfp, sz11,
	// isabela, pwrel): compressed stream plus a several-times-larger
	// reconstruction.
	bufferedDecompressFallbackMult = 5

	// blockedDecompressBytesPerCell is the streaming reader's
	// *adversarial* per-cell bound: the reader tolerates compressed
	// slabs up to maxSlabStream = 4x raw (32 B/cell for f64) before
	// calling a container hostile, plus the float64 working copy (8)
	// and the raw output (<= 8). Deliberately above the well-formed
	// peak, so it is asserted one-sided in the calibration test.
	blockedDecompressBytesPerCell = 48

	// blockedSharedCodebookCharge covers a v3 shared codebook held for
	// the life of the decode: the 2^12-entry prefix table (16 KiB) plus
	// canonical arrays for a full 2^16-symbol alphabet, with headroom.
	blockedSharedCodebookCharge = 64 << 10

	// blockedStreamStateBytes covers one interleaved sub-stream's decode
	// state per slab (reader cursor plus framing slack) — tiny, charged
	// per declared stream so a hostile streams byte still costs.
	blockedStreamStateBytes = 4 << 10
)

// compressCharge estimates the peak memory a compress request pins,
// which is what the in-flight byte budget meters. The second return
// reports whether the path streams (memory independent of body size) —
// streaming requests are not metered per body byte.
//
//   - gzip streams with O(window) memory: flat gzipCompressCharge.
//   - blocked with an absolute bound streams slab-at-a-time: charge the
//     pipeline depth (workers+2 slabs in flight) times the calibrated
//     slab footprint, independent of the total request size — this is
//     what keeps a saturated daemon's memory bounded even while
//     petabyte-scale fields flow through.
//   - every other (buffered) codec holds the raw input plus the
//     calibrated per-element working set. With no declared length at
//     all, the flat unknown-length charge stands in for the worst case
//     (no multiplier on top: it already equals the per-request cap).
func (s *Server) compressCharge(name string, declared int64, p codec.Params) (int64, bool) {
	unknown := declared < 0
	if unknown {
		declared = s.unknownCharge()
	}
	esz := dtypeSize(p)
	// The streaming-vs-buffered split comes from the codec layer (the
	// same predicate the adapters act on), so admission never drifts
	// from the writers' actual memory behavior.
	if codec.StreamingWriter(name, p) {
		if name == "blocked" && len(p.Dims) > 0 {
			rowCells := int64(1)
			for _, d := range p.Dims[1:] {
				rowCells = satMul(rowCells, int64(d))
			}
			slabRows := int64(blocked.SlabRowsFor(p.Dims[0], p.SlabRows))
			workers := int64(p.Workers)
			if workers <= 0 {
				workers = int64(runtime.GOMAXPROCS(0))
			}
			est := satMul(satMul(workers+2, satMul(slabRows, rowCells)), esz+blockedSlabOverheadPerCell)
			if est < 1<<20 {
				est = 1 << 20
			}
			// Small fields cost less than a full pipeline: cap by the
			// whole-array footprint, computed from dims — never from
			// the client-declared length, which a false hint could
			// shrink to zero and defeat the budget with.
			if full := satMul(rawBytesFor(p.Dims, esz), 1+bufferedCompressOverheadPerElem/esz); est > full {
				est = full
			}
			return est, true
		}
		return gzipCompressCharge, true
	}
	if unknown {
		return declared, false
	}
	return satMul(declared, 1+bufferedCompressOverheadPerElem/esz), false
}

// decompressCharge estimates the peak memory a decompress request pins.
// gzip streams with O(window); the blocked reader holds one slab at a
// time, so its charge comes from the slab geometry in the container
// header (peeked, attacker-supplied, hence validated and saturated) —
// a single-slab container is charged its whole footprint. An sz14
// stream's header reveals its element count, so its buffered decode is
// charged per element regardless of compression factor; the remaining
// buffered decoders fall back to a flat multiple of the declared size.
func (s *Server) decompressCharge(name string, declared int64, header []byte) (int64, bool) {
	if codec.StreamingReader(name) {
		charge := int64(1 << 20) // gzip O(window); blocked floor
		if name == "gzip" {
			return gzipDecompressCharge, true
		}
		if name == "blocked" {
			if ci, err := blocked.ParseContainerHeader(header); err == nil {
				rowCells := int64(1)
				for _, d := range ci.Dims[1:] {
					rowCells = satMul(rowCells, int64(d))
				}
				c := satMul(satMul(int64(ci.SlabRows), rowCells), blockedDecompressBytesPerCell)
				// v3 footprints: the shared codebook lives for the whole
				// decode, and each slab keeps one cursor per sub-stream
				// (v2's single cursor is already inside the per-cell bound).
				if ci.Version >= 3 {
					if ci.CodebookLen > 0 {
						c += blockedSharedCodebookCharge
					}
					c += satMul(int64(ci.Streams), blockedStreamStateBytes)
				}
				if c > charge {
					charge = c
				}
			}
		}
		return charge, true
	}
	if name == "sz14" && len(header) > 0 {
		if h, _, err := core.ParseHeaderPrefix(header); err == nil {
			elems := int64(1)
			for _, d := range h.Dims {
				elems = satMul(elems, int64(d))
			}
			perElem := int64(bufferedDecompressOverheadPerElem + h.DType.Size())
			base := declared
			if base < 0 {
				base = 0
			}
			return base + satMul(elems, perElem), false
		}
	}
	if declared < 0 {
		return s.unknownCharge(), false
	}
	return satMul(declared, bufferedDecompressFallbackMult), false
}
