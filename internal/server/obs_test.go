package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/grid"
	"repro/internal/obs"
)

// TestTraceAndServerTiming: a compress request must continue an inbound
// traceparent, echo a request ID, deliver its stage breakdown as a
// Server-Timing trailer once the body drains, and land in the
// /debug/traces ring with its spans.
func TestTraceAndServerTiming(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)

	const traceID = "0af7651916cd43dd8448eb211c80319c"
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12",
		bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Traceparent", "00-"+traceID+"-b7ad6b7169203331-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	reqID := resp.Header.Get(api.HeaderRequestID)
	if reqID == "" {
		t.Error("no X-Sz-Request-Id header")
	}
	readAllClose(t, resp) // drain: the Server-Timing trailer settles after the last byte
	st := resp.Trailer.Get("Server-Timing")
	if st == "" {
		t.Fatalf("no Server-Timing trailer; trailer=%v", resp.Trailer)
	}
	for _, stage := range []string{"admission;dur=", "encode;dur=", "total;dur="} {
		if !strings.Contains(st, stage) {
			t.Errorf("Server-Timing missing %q: %q", stage, st)
		}
	}

	dresp, err := http.Get(ts.URL + "/debug/traces?trace_id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Traces []obs.TraceRecord `json:"traces"`
	}
	if err := json.Unmarshal(readAllClose(t, dresp), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 {
		t.Fatalf("want 1 ring trace for %s, got %d", traceID, len(out.Traces))
	}
	rec := out.Traces[0]
	if rec.RequestID != reqID || rec.Status != http.StatusOK || rec.Endpoint != "compress" {
		t.Errorf("ring record mismatch: %+v (want request %s)", rec, reqID)
	}
	names := map[string]bool{}
	for _, sp := range rec.Spans {
		names[sp.Name] = true
	}
	if !names["admission"] || !names["encode"] {
		t.Errorf("ring spans missing stages: %+v", rec.Spans)
	}
}

// TestMetricsScrapeValid parses the entire /metrics exposition and
// validates its structure (declared families, +Inf buckets, _count
// consistency), then checks the trace-fed stage histograms and the
// scratch-pool gauges are populated.
func TestMetricsScrapeValid(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	resp := post(t, ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=16,20,12", raw)
	readAllClose(t, resp)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAllClose(t, mresp))
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, body)
	}
	exp, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"admission", "encode"} {
		v, ok := exp.Value("szd_stage_seconds_count",
			map[string]string{"endpoint": "compress", "stage": stage})
		if !ok || v < 1 {
			t.Errorf("szd_stage_seconds{stage=%q} not populated (%v, %v)", stage, v, ok)
		}
	}
	for _, fam := range []string{
		"# TYPE szd_scratch_hits gauge",
		"# TYPE szd_scratch_puts gauge",
		"# TYPE szd_goroutines gauge",
		"# TYPE szd_gc_pause_total_seconds counter",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("scrape missing %q", fam)
		}
	}
	// The blocked path pools slab buffers, so compress traffic must show
	// up as scratch puts.
	var puts float64
	for _, s := range exp.Samples {
		if s.Name == "szd_scratch_puts" {
			puts += s.Value
		}
	}
	if puts == 0 {
		t.Error("szd_scratch_puts all zero after a blocked compress")
	}
}
