package server

// Admission control. The governor meters two resources:
//
//   - an in-flight byte budget approximating the peak memory concurrent
//     requests can pin (buffered codecs charge their whole payload,
//     streaming codecs charge their window), and
//   - a worker pool sized off GOMAXPROCS whose tokens are shared with
//     the blocked container's internal parallelism — a request that is
//     granted k tokens runs its slab workers at most k wide, so total
//     CPU-bound parallelism across all requests stays bounded.
//
// Both resources are acquired non-blocking at admission: when either is
// exhausted the request is rejected immediately (429) instead of queuing,
// so saturation degrades into fast rejections rather than a convoy of
// half-served streams.
//
// Neither limit is a constant anymore. The byte budget and a worker
// clamp are atomics the QoS control loop (internal/qos) rewrites at
// its own cadence; admission reads whatever is current. On top of the
// global budget the governor runs weighted-fair tenant accounting:
// every admit is charged to a tenant, and once the daemon is past a
// contention watermark each tenant is held to its weighted share of
// the budget — below the watermark admission is work-conserving and
// any tenant may use idle capacity. Batch-priority requests shed
// before interactive ones by admitting only under a headroom
// watermark.

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/api"
)

var (
	errDraining    = errors.New("server is draining")
	errBudget      = errors.New("in-flight byte budget exhausted")
	errWorkers     = errors.New("worker pool exhausted")
	errTooLarge    = errors.New("request exceeds the per-request size limit")
	errTenantShare = errors.New("tenant exceeded its weighted-fair share")
)

const (
	// fairShareWatermark: fraction of the budget in use before
	// per-tenant shares are enforced. Below it admission is
	// work-conserving.
	fairShareWatermark = 0.5
	// batchWatermark: batch requests are admitted only while total
	// in-flight stays under this fraction of the budget, so batch
	// load sheds first and interactive traffic keeps headroom.
	batchWatermark = 0.9
)

type governor struct {
	poolSize int // worker tokens backing the pool

	draining atomic.Bool
	budget   atomic.Int64 // live byte budget; <= 0 means unlimited
	clamp    atomic.Int64 // live worker clamp, 1..poolSize
	inflight atomic.Int64 // reserved bytes (mirror for lock-free gauges)
	requests atomic.Int64 // admitted, not yet released
	sheds    atomic.Int64 // cumulative load-shed rejections (QoS signal)

	mu      sync.Mutex
	free    int                    // worker tokens not handed out
	weights map[string]float64     // configured tenant weights (read-only)
	tenants map[string]*tenantAcct // live per-tenant accounting
}

// tenantAcct is one tenant's admission state. Entries persist once
// created so the admitted/rejected counters survive idle periods.
type tenantAcct struct {
	weight   float64
	inflight int64
	admitted int64
	rejected int64
}

func newGovernor(maxInflightBytes int64, workers int, weights map[string]float64) *governor {
	g := &governor{
		poolSize: workers,
		free:     workers,
		weights:  weights,
		tenants:  map[string]*tenantAcct{},
	}
	g.budget.Store(maxInflightBytes)
	g.clamp.Store(int64(workers))
	return g
}

// setBudget publishes a new byte budget. In-flight charges above a
// shrunken budget drain naturally; only new admissions see the cut.
func (g *governor) setBudget(n int64) { g.budget.Store(n) }

// setWorkerClamp publishes a new worker clamp in [1, poolSize].
func (g *governor) setWorkerClamp(n int) {
	if n < 1 {
		n = 1
	}
	if n > g.poolSize {
		n = g.poolSize
	}
	g.clamp.Store(int64(n))
}

// acct returns (creating if needed) the tenant's accounting entry.
// Caller holds mu.
func (g *governor) acct(tenant string) *tenantAcct {
	a := g.tenants[tenant]
	if a == nil {
		w := g.weights[tenant]
		if w <= 0 {
			w = 1
		}
		a = &tenantAcct{weight: w}
		g.tenants[tenant] = a
	}
	return a
}

// shareBytes computes tenant a's weighted-fair byte share given the
// currently active tenants (those with in-flight charge, plus a
// itself). Caller holds mu.
func (g *governor) shareBytes(a *tenantAcct, budget int64) int64 {
	sumW := a.weight
	for _, t := range g.tenants {
		if t != a && t.inflight > 0 {
			sumW += t.weight
		}
	}
	return int64(float64(budget) * a.weight / sumW)
}

// grant is one admitted request's hold on the governed resources.
type grant struct {
	g        *governor
	acct     *tenantAcct
	bytes    int64
	workers  int
	released atomic.Bool
}

// admit reserves charge bytes of budget and up to wantWorkers worker
// tokens (at least one) on behalf of tenant. It never blocks:
// exhaustion of any resource — the global budget, the tenant's fair
// share under contention, or the worker pool — is an immediate error.
func (g *governor) admit(tenant string, pri api.Priority, charge int64, wantWorkers int) (*grant, error) {
	if g.draining.Load() {
		return nil, errDraining
	}
	if charge < 0 {
		return nil, errBudget
	}
	budget := g.budget.Load()

	g.mu.Lock()
	a := g.acct(tenant)
	if budget > 0 {
		cur := g.inflight.Load()
		if cur+charge > budget {
			a.rejected++
			g.mu.Unlock()
			g.sheds.Add(1)
			return nil, errBudget
		}
		if pri == api.Batch && float64(cur+charge) > batchWatermark*float64(budget) {
			a.rejected++
			g.mu.Unlock()
			g.sheds.Add(1)
			return nil, errBudget
		}
		if float64(cur+charge) > fairShareWatermark*float64(budget) {
			if a.inflight+charge > g.shareBytes(a, budget) {
				a.rejected++
				g.mu.Unlock()
				g.sheds.Add(1)
				return nil, errTenantShare
			}
		}
	}
	if wantWorkers < 1 {
		wantWorkers = 1
	}
	clamp := int(g.clamp.Load())
	if wantWorkers > clamp {
		wantWorkers = clamp
	}
	// The clamp may sit below the pool: tokens beyond it are parked
	// even when free.
	avail := clamp - (g.poolSize - g.free)
	granted := wantWorkers
	if granted > avail {
		granted = avail
	}
	if granted <= 0 {
		a.rejected++
		g.mu.Unlock()
		g.sheds.Add(1)
		return nil, errWorkers
	}
	g.free -= granted
	a.inflight += charge
	a.admitted++
	g.mu.Unlock()

	g.inflight.Add(charge)
	g.requests.Add(1)
	return &grant{g: g, acct: a, bytes: charge, workers: granted}, nil
}

// grow extends the grant's byte reservation mid-request (a stream that
// exceeded its declared size). Non-blocking; on refusal the caller must
// abort the request. Growth is held to the global budget but not the
// fair share: the request was admitted under its share, and aborting
// half-served streams on a share breach wastes more than it protects.
func (gr *grant) grow(n int64) bool {
	if n < 0 {
		return false
	}
	g := gr.g
	budget := g.budget.Load()
	if budget > 0 {
		for {
			cur := g.inflight.Load()
			if cur+n > budget {
				return false
			}
			if g.inflight.CompareAndSwap(cur, cur+n) {
				break
			}
		}
	} else {
		g.inflight.Add(n)
	}
	g.mu.Lock()
	gr.acct.inflight += n
	g.mu.Unlock()
	gr.bytes += n
	return true
}

// release returns everything the grant holds. Idempotent.
func (gr *grant) release() {
	if gr.released.Swap(true) {
		return
	}
	g := gr.g
	g.inflight.Add(-gr.bytes)
	g.mu.Lock()
	g.free += gr.workers
	gr.acct.inflight -= gr.bytes
	g.mu.Unlock()
	g.requests.Add(-1)
}

// busyWorkers reports handed-out worker tokens.
func (g *governor) busyWorkers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.poolSize - g.free
}

// tenantSnapshot is one tenant's externally visible admission state.
type tenantSnapshot struct {
	name     string
	weight   float64
	share    int64
	inflight int64
	admitted int64
	rejected int64
}

// snapshotTenants returns the per-tenant view plus the current budget,
// for /v1/limits, /debug/qos, and the szd_qos_* gauges. Configured-
// but-idle tenants are included so operators can see their weights.
func (g *governor) snapshotTenants() []tenantSnapshot {
	budget := g.budget.Load()
	g.mu.Lock()
	defer g.mu.Unlock()
	for name := range g.weights {
		g.acct(name)
	}
	out := make([]tenantSnapshot, 0, len(g.tenants))
	for name, a := range g.tenants {
		out = append(out, tenantSnapshot{
			name:     name,
			weight:   a.weight,
			share:    g.shareBytes(a, budget),
			inflight: a.inflight,
			admitted: a.admitted,
			rejected: a.rejected,
		})
	}
	return out
}
