package server

// Admission control. The governor meters two resources:
//
//   - an in-flight byte budget approximating the peak memory concurrent
//     requests can pin (buffered codecs charge their whole payload,
//     streaming codecs charge their window), and
//   - a worker pool sized off GOMAXPROCS whose tokens are shared with
//     the blocked container's internal parallelism — a request that is
//     granted k tokens runs its slab workers at most k wide, so total
//     CPU-bound parallelism across all requests stays bounded.
//
// Both resources are acquired non-blocking at admission: when either is
// exhausted the request is rejected immediately (429) instead of queuing,
// so saturation degrades into fast rejections rather than a convoy of
// half-served streams.

import (
	"errors"
	"sync"
	"sync/atomic"
)

var (
	errDraining = errors.New("server is draining")
	errBudget   = errors.New("in-flight byte budget exhausted")
	errWorkers  = errors.New("worker pool exhausted")
	errTooLarge = errors.New("request exceeds the per-request size limit")
)

type governor struct {
	maxInflight int64 // byte budget; <= 0 means unlimited
	poolSize    int   // worker tokens

	draining atomic.Bool
	inflight atomic.Int64 // reserved bytes
	requests atomic.Int64 // admitted, not yet released

	mu   sync.Mutex
	free int // worker tokens not handed out
}

func newGovernor(maxInflightBytes int64, workers int) *governor {
	return &governor{maxInflight: maxInflightBytes, poolSize: workers, free: workers}
}

// grant is one admitted request's hold on the governed resources.
type grant struct {
	g        *governor
	bytes    int64
	workers  int
	released atomic.Bool
}

// admit reserves charge bytes of budget and up to wantWorkers worker
// tokens (at least one). It never blocks: exhaustion of either resource
// is an immediate error.
func (g *governor) admit(charge int64, wantWorkers int) (*grant, error) {
	if g.draining.Load() {
		return nil, errDraining
	}
	if !g.tryReserve(charge) {
		return nil, errBudget
	}
	if wantWorkers < 1 {
		wantWorkers = 1
	}
	if wantWorkers > g.poolSize {
		wantWorkers = g.poolSize
	}
	g.mu.Lock()
	granted := wantWorkers
	if granted > g.free {
		granted = g.free
	}
	g.free -= granted
	g.mu.Unlock()
	if granted == 0 {
		g.inflight.Add(-charge)
		return nil, errWorkers
	}
	g.requests.Add(1)
	return &grant{g: g, bytes: charge, workers: granted}, nil
}

// tryReserve adds n bytes to the in-flight reservation if the budget
// allows it. Negative reservations are refused outright: they would
// add budget headroom, so a caller computing one has a bug upstream.
func (g *governor) tryReserve(n int64) bool {
	if n < 0 {
		return false
	}
	if g.maxInflight <= 0 {
		g.inflight.Add(n)
		return true
	}
	for {
		cur := g.inflight.Load()
		if cur+n > g.maxInflight {
			return false
		}
		if g.inflight.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// grow extends the grant's byte reservation mid-request (a stream that
// exceeded its declared size). Non-blocking; on refusal the caller must
// abort the request.
func (gr *grant) grow(n int64) bool {
	if !gr.g.tryReserve(n) {
		return false
	}
	gr.bytes += n
	return true
}

// release returns everything the grant holds. Idempotent.
func (gr *grant) release() {
	if gr.released.Swap(true) {
		return
	}
	gr.g.inflight.Add(-gr.bytes)
	gr.g.mu.Lock()
	gr.g.free += gr.workers
	gr.g.mu.Unlock()
	gr.g.requests.Add(-1)
}

// busyWorkers reports handed-out worker tokens.
func (g *governor) busyWorkers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.poolSize - g.free
}
