package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/grid"
)

// slabContainer builds a 16x8x8 f32 blocked container with 4-row slabs
// and returns (stream, raw input bytes).
func slabContainer(t *testing.T) ([]byte, []byte) {
	t.Helper()
	raw, _ := makeRaw(t, grid.Float32, 16, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 8, 8}, SlabRows: 4}
	return localStream(t, "blocked", raw, p), raw
}

// localSlabDecode is the reference: the library's own random-access
// decode serialized in the container's element type.
func localSlabDecode(t *testing.T, stream []byte, lo, hi int) []byte {
	t.Helper()
	arr, dt, err := blocked.DecompressSlabRange(stream, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := arr.WriteRaw(&buf, dt); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSlabsEndpoint(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	stream, _ := slabContainer(t)

	resp := post(t, ts.URL+"/v1/slabs", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	var si codec.SlabIndex
	if err := json.Unmarshal(readAllClose(t, resp), &si); err != nil {
		t.Fatal(err)
	}
	if si.Codec != "blocked" || si.Slabs != 4 || si.SlabRows != 4 || si.DType != "float32" {
		t.Fatalf("slab index = %+v, want blocked 4x4 float32", si)
	}
	want, err := codec.SlabIndexOf(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(si.SlabLengths) != len(want.SlabLengths) {
		t.Fatalf("%d slab lengths, want %d", len(si.SlabLengths), len(want.SlabLengths))
	}

	// A non-blocked stream has no slab index.
	raw, _ := makeRaw(t, grid.Float32, 8, 8)
	szStream := localStream(t, "sz14", raw, codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{8, 8}})
	resp = post(t, ts.URL+"/v1/slabs", szStream)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sz14 stream: status %d, want 400", resp.StatusCode)
	}
	readAllClose(t, resp)
}

func TestSlabEndpointMatchesLocal(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	stream, _ := slabContainer(t)

	for _, spec := range []struct {
		path   string
		lo, hi int
	}{
		{"0", 0, 0},
		{"2", 2, 2},
		{"3", 3, 3},
		{"1-2", 1, 2},
		{"0-3", 0, 3},
	} {
		resp := post(t, ts.URL+"/v1/slab/"+spec.path, stream)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("slab %s: status %d: %s", spec.path, resp.StatusCode, readAllClose(t, resp))
		}
		if dt := resp.Header.Get(api.HeaderDtype); dt != "float32" {
			t.Errorf("slab %s: X-Sz-Dtype = %q", spec.path, dt)
		}
		got := readAllClose(t, resp)
		if want := localSlabDecode(t, stream, spec.lo, spec.hi); !bytes.Equal(got, want) {
			t.Fatalf("slab %s: remote decode differs from local (%d vs %d bytes)", spec.path, len(got), len(want))
		}
	}

	// The whole-container range must equal the full decompression.
	resp := post(t, ts.URL+"/v1/slab/0-3", stream)
	full := readAllClose(t, resp)
	arr, err := blocked.Decompress(stream, blocked.Params{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := arr.WriteRaw(&buf, grid.Float32); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, buf.Bytes()) {
		t.Fatal("slab range 0-3 differs from full decompression")
	}
}

func TestSlabEndpointErrors(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	stream, _ := slabContainer(t)

	for _, c := range []struct {
		path   string
		status int
	}{
		{"abc", http.StatusBadRequest},
		{"3-1", http.StatusBadRequest},
		{"", http.StatusBadRequest},
		{"1.5", http.StatusBadRequest},
		{"4", http.StatusRequestedRangeNotSatisfiable},
		{"2-9", http.StatusRequestedRangeNotSatisfiable},
	} {
		resp := post(t, ts.URL+"/v1/slab/"+c.path, stream)
		if resp.StatusCode != c.status {
			t.Errorf("slab %q: status %d, want %d", c.path, resp.StatusCode, c.status)
		}
		readAllClose(t, resp)
	}

	// Garbage container.
	resp := post(t, ts.URL+"/v1/slab/0", []byte("not a container"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage container: status %d, want 400", resp.StatusCode)
	}
	readAllClose(t, resp)

	// Wrong method.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/slab/0", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE: status %d, want 405", dresp.StatusCode)
	}
	readAllClose(t, dresp)
}

func TestSlabMetricsRecorded(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	stream, _ := slabContainer(t)
	readAllClose(t, post(t, ts.URL+"/v1/slab/1", stream))
	readAllClose(t, post(t, ts.URL+"/v1/slabs", stream))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readAllClose(t, resp))
	for _, want := range []string{
		`szd_requests_total{endpoint="slab",codec="blocked",status="200"} 1`,
		`szd_requests_total{endpoint="slabs",codec="blocked",status="200"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
