package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/store"
)

// BenchmarkSlabStorePaths compares the three ways a slab leaves szd:
//
//	cold/recompute   POST /v1/slab/{i} with the container body — upload,
//	                 CRC walk, footer parse, slab decode, every request
//	warm/store-raw   GET ?digest= off the store's mmap — no upload, no
//	                 CRC walk, slab decode only
//	warm/store-extent  same, Accept: application/x-sz-slab — the footer
//	                 index slices the compressed extent straight out of
//	                 the mapping; zero decode work
//
// Each sub-benchmark times individual requests and reports the p50/p99
// alongside the mean, since the acceptance bar is a latency percentile,
// not a throughput average.
func BenchmarkSlabStorePaths(b *testing.B) {
	st, err := store.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	s := New(Config{Store: st})

	a := datagen.Hurricane(50, 250, 250, 7)
	var rawBuf bytes.Buffer
	if err := a.WriteRaw(&rawBuf, grid.Float32); err != nil {
		b.Fatal(err)
	}
	c, err := codec.Lookup("blocked")
	if err != nil {
		b.Fatal(err)
	}
	var streamBuf bytes.Buffer
	zw, err := c.NewWriter(&streamBuf, codec.Params{
		Dims: a.Dims, DType: grid.Float32, Mode: core.BoundAbs, AbsBound: 1e-3, SlabRows: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := zw.Write(rawBuf.Bytes()); err != nil {
		b.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		b.Fatal(err)
	}
	stream := streamBuf.Bytes()
	digest, err := st.Put(stream)
	if err != nil {
		b.Fatal(err)
	}

	// One slab: 10 rows x 250 x 250 float32.
	slabRaw := int64(10 * 250 * 250 * 4)

	run := func(b *testing.B, mkReq func() *http.Request, decodedBytes int64) {
		b.SetBytes(int64(len(stream)))
		b.ReportAllocs()
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := mkReq()
			t0 := time.Now()
			s.handleSlab(&discardWriter{}, req)
			lat = append(lat, time.Since(t0))
		}
		b.StopTimer()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns/op")
		b.ReportMetric(float64(lat[len(lat)*99/100].Nanoseconds()), "p99-ns/op")
		b.ReportMetric(float64(decodedBytes), "decoded-B/op")
	}

	b.Run("cold/recompute", func(b *testing.B) {
		run(b, func() *http.Request {
			return httptest.NewRequest(http.MethodPost, "/v1/slab/2", bytes.NewReader(stream))
		}, slabRaw)
	})
	b.Run("warm/store-raw", func(b *testing.B) {
		run(b, func() *http.Request {
			return httptest.NewRequest(http.MethodGet, "/v1/slab/2?digest="+digest, nil)
		}, slabRaw)
	})
	b.Run("warm/store-extent", func(b *testing.B) {
		run(b, func() *http.Request {
			req := httptest.NewRequest(http.MethodGet, "/v1/slab/2?digest="+digest, nil)
			req.Header.Set("Accept", SlabContentType)
			return req
		}, 0)
	})

	// Sanity: every path must answer 200 with the same samples (the
	// extent path modulo local decode, covered by the store tests).
	cold := httptest.NewRecorder()
	s.handleSlab(cold, httptest.NewRequest(http.MethodPost, "/v1/slab/2", bytes.NewReader(stream)))
	warm := httptest.NewRecorder()
	s.handleSlab(warm, httptest.NewRequest(http.MethodGet, "/v1/slab/2?digest="+digest, nil))
	if cold.Code != http.StatusOK || warm.Code != http.StatusOK {
		b.Fatalf("sanity requests returned %d / %d", cold.Code, warm.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		b.Fatalf("store path returned different samples (%d vs %d bytes)",
			warm.Body.Len(), cold.Body.Len())
	}
}
