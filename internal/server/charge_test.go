package server

import (
	"bytes"
	"io"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
)

// measureAllocated returns the bytes op allocates, with the collector
// disabled so nothing is reclaimed mid-measurement. Two forced GCs first
// empty the scratch pools (sync.Pool drops its contents across two GC
// cycles), so the op pays for — and the measurement sees — its full
// working set. With the hot path pooled, allocation during one op is a
// faithful stand-in for the peak memory it pins: the working buffers are
// allocated once and reused, not churned.
func measureAllocated(t *testing.T, op func()) int64 {
	t.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	op()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

// TestAdmissionChargeCalibration pins the admission-charge constants to
// reality: for each calibrated codec path the charge must stay within 2x
// of the measured peak in both directions — neither letting real memory
// exceed the budget the governor thinks it granted, nor rejecting
// traffic the daemon could easily carry.
//
// The blocked *decompress* charge is deliberately not calibrated here:
// it is an adversarial bound (a hostile container may legally carry
// compressed slabs up to 4x their raw size), so it intentionally sits
// above the well-formed-container peak.
func TestAdmissionChargeCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("memory calibration is slow")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation accounting; run without -race")
	}
	s := New(Config{})
	a := datagen.Hurricane(32, 192, 192, 7) // ~4.5 MiB as float32
	var rawBuf bytes.Buffer
	if err := a.WriteRaw(&rawBuf, grid.Float32); err != nil {
		t.Fatal(err)
	}
	raw := rawBuf.Bytes()
	dims := []int{32, 192, 192}

	encode := func(name string, p codec.Params) []byte {
		t.Helper()
		c, err := codec.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		zw, err := c.NewWriter(&out, p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zw.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	check := func(path, name string, charge, measured int64) {
		t.Helper()
		t.Logf("%-20s charge %10d  measured %10d  ratio %.2f", path+"/"+name, charge, measured, float64(charge)/float64(measured))
		if charge > 2*measured {
			t.Errorf("%s %s: charge %d over-estimates measured peak %d by more than 2x", path, name, charge, measured)
		}
		if measured > 2*charge {
			t.Errorf("%s %s: measured peak %d exceeds charge %d by more than 2x (budget can be overrun)", path, name, measured, charge)
		}
	}

	compressParams := map[string]codec.Params{
		"sz14":    {Dims: dims, DType: grid.Float32, Mode: core.BoundAbs, AbsBound: 1e-3},
		"gzip":    {},
		"blocked": {Dims: dims, DType: grid.Float32, Mode: core.BoundAbs, AbsBound: 1e-3, SlabRows: 8, Workers: 2},
	}
	for _, name := range []string{"sz14", "gzip", "blocked"} {
		p := compressParams[name]
		c, err := codec.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		measured := measureAllocated(t, func() {
			zw, err := c.NewWriter(io.Discard, p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := zw.Write(raw); err != nil {
				t.Fatal(err)
			}
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
		})
		charge, _ := s.compressCharge(name, int64(len(raw)), p)
		check("compress", name, charge, measured)
	}

	for _, name := range []string{"sz14", "gzip"} {
		stream := encode(name, compressParams[name])
		c, err := codec.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		measured := measureAllocated(t, func() {
			zr, err := c.NewReader(bytes.NewReader(stream), codec.Params{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, zr); err != nil {
				t.Fatal(err)
			}
			zr.Close()
		})
		// The handler peeks the stream prefix for header-bearing codecs;
		// hand the charge the same view.
		charge, _ := s.decompressCharge(name, int64(len(stream)), stream[:blockedHeaderPeek(stream)])
		check("decompress", name, charge, measured)
	}

	// Blocked decompress: assert only the safe direction (the charge is
	// an adversarial upper bound and must never under-cover).
	stream := encode("blocked", compressParams["blocked"])
	c, _ := codec.Lookup("blocked")
	measured := measureAllocated(t, func() {
		zr, err := c.NewReader(bytes.NewReader(stream), codec.Params{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, zr); err != nil {
			t.Fatal(err)
		}
		zr.Close()
	})
	charge, _ := s.decompressCharge("blocked", int64(len(stream)), stream[:blockedHeaderPeek(stream)])
	t.Logf("%-20s charge %10d  measured %10d  ratio %.2f", "decompress/blocked", charge, measured, float64(charge)/float64(measured))
	if measured > charge {
		t.Errorf("decompress blocked: measured peak %d exceeds the adversarial charge %d", measured, charge)
	}
}

func blockedHeaderPeek(stream []byte) int {
	if len(stream) > 64 {
		return 64
	}
	return len(stream)
}
