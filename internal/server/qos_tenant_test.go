package server

// Tests for the per-tenant QoS surface: hostile tenant headers, the
// weighted-fair admission guarantee under a flooding tenant, batch
// shedding, and the /v1/limits and /debug/qos read-side.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/grid"
)

// TestHostileTenantHeaders drives malformed and spoofed identity
// headers at a live daemon: bad credentials are 400 bad_tenant
// envelopes answered before admission, and an inbound X-Sz-Tenant is
// stripped — accounting follows the API key, never the spoof.
func TestHostileTenantHeaders(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw, _ := makeRaw(t, grid.Float32, 8, 10)
	url := ts.URL + api.PathCompress + "?codec=sz14&abs=1e-3&dtype=f32&dims=8,10"

	bad := []struct {
		name, key, priority string
	}{
		{"oversized key", strings.Repeat("a", api.MaxAPIKeyLen+1), ""},
		{"invalid byte", "acme key", ""},
		{"header injection", "acme\tkey", ""},
		{"empty tenant prefix", ".hidden", ""},
		{"unknown priority", "acme.k1", "urgent"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(string(raw)))
			req.Header.Set(api.HeaderAPIKey, tc.key)
			if tc.priority != "" {
				req.Header.Set(api.HeaderPriority, tc.priority)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var e api.Error
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("not an envelope: %v", err)
			}
			if e.Code != api.CodeBadTenant {
				t.Fatalf("code = %q, want %q", e.Code, api.CodeBadTenant)
			}
			if e.RequestID == "" {
				t.Error("envelope missing request_id")
			}
		})
	}

	// Spoof attempt: a valid key plus a forged X-Sz-Tenant. The request
	// must succeed and be accounted to the key's tenant, not the forgery.
	req, _ := http.NewRequest(http.MethodPost, url, strings.NewReader(string(raw)))
	req.Header.Set(api.HeaderAPIKey, "acme.k1")
	req.Header.Set(api.HeaderTenant, "victim")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spoofed-but-valid request status = %d, want 200", resp.StatusCode)
	}
	seen := map[string]bool{}
	for _, ten := range s.gov.snapshotTenants() {
		seen[ten.name] = true
	}
	if !seen["acme"] {
		t.Error("tenant \"acme\" missing from accounting after keyed request")
	}
	if seen["victim"] {
		t.Error("forged X-Sz-Tenant minted an account — spoof not stripped")
	}
}

// TestOversizedChargeEnvelope: a request whose charge can never fit the
// configured budget is a 413 too_large envelope, not a retryable 429.
func TestOversizedChargeEnvelope(t *testing.T) {
	s := New(Config{MaxInflightBytes: 4096})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := strings.Repeat("x", 8192)
	resp, err := http.Post(ts.URL+api.PathCompress+"?codec=gzip", "application/octet-stream",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("not an envelope: %v", err)
	}
	if e.Code != api.CodeTooLarge {
		t.Fatalf("code = %q, want %q", e.Code, api.CodeTooLarge)
	}
}

// TestMixedTenantFairness is the admission half of the ISSUE's
// acceptance load test, run deterministically against the governor: a
// flooding tenant saturates admission while a victim tenant offers
// steady load under its weighted-fair share. The victim must land at
// least 80% of its share-bounded demand, and the flood must actually
// be capped (shed at least once) — otherwise the test would pass on an
// ungoverned free-for-all.
func TestMixedTenantFairness(t *testing.T) {
	const budget = int64(1 << 20)
	const chunk = budget / 64
	for _, tc := range []struct {
		name    string
		weights map[string]float64
		share   float64 // victim's weighted-fair fraction
	}{
		{"equal", nil, 0.5},
		{"weighted-3to1", map[string]float64{"flood": 3, "victim": 1}, 0.25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := newGovernor(budget, 1024, tc.weights)
			// The victim asks for 80% of its fair share each round, in
			// chunks, interleaved 1:3 with flood attempts.
			demandPerRound := int64(float64(budget) * tc.share * 0.8)
			var victimGot, victimAsked, floodRejects int64
			const rounds = 50
			for r := 0; r < rounds; r++ {
				var grants []*grant
				demand := demandPerRound
				for i := 0; i < 512; i++ {
					if i%4 == 3 {
						if demand <= 0 {
							continue
						}
						c := chunk
						if c > demand {
							c = demand
						}
						victimAsked += c
						demand -= c
						if gr, err := g.admit("victim", api.Interactive, c, 1); err == nil {
							grants = append(grants, gr)
							victimGot += c
						}
					} else {
						if gr, err := g.admit("flood", api.Interactive, chunk, 1); err == nil {
							grants = append(grants, gr)
						} else {
							floodRejects++
						}
					}
				}
				for _, gr := range grants {
					gr.release()
				}
			}
			if floodRejects == 0 {
				t.Fatal("flood was never capped — fairness did not engage")
			}
			goodput := float64(victimGot) / float64(victimAsked)
			if goodput < 0.8 {
				t.Fatalf("victim goodput %.1f%% of its share-bounded demand, want >= 80%%",
					100*goodput)
			}
			// The flood must not have been starved either: work-conserving
			// admission gives it everything the victim left on the table.
			for _, ten := range g.snapshotTenants() {
				if ten.name == "flood" && ten.admitted == 0 {
					t.Fatal("flood tenant starved outright")
				}
			}
		})
	}
}

// TestBatchShedsFirst: with the daemon past the batch watermark, batch
// admission fails while an interactive request of the same size and
// tenant still lands.
func TestBatchShedsFirst(t *testing.T) {
	const budget = int64(1000)
	g := newGovernor(budget, 16, nil)
	base, err := g.admit("t", api.Interactive, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer base.release()
	if _, err := g.admit("t", api.Batch, 600, 1); err == nil {
		t.Fatal("batch admitted past the batch watermark")
	}
	gr, err := g.admit("t", api.Interactive, 600, 1)
	if err != nil {
		t.Fatalf("interactive rejected where batch correctly shed: %v", err)
	}
	gr.release()
}

// TestLimitsAndDebugQoS reads the QoS state endpoints end to end:
// /v1/limits reports the live budget, clamp, and configured tenant
// weights; /debug/qos reflects controller ticks driven via TickQoS.
func TestLimitsAndDebugQoS(t *testing.T) {
	s := New(Config{
		MaxInflightBytes: 64 << 20,
		TenantWeights:    map[string]float64{"acme": 3},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + api.PathLimits)
	if err != nil {
		t.Fatal(err)
	}
	var lim api.Limits
	if err := json.NewDecoder(resp.Body).Decode(&lim); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if lim.BudgetBytes <= 0 || lim.Workers <= 0 {
		t.Fatalf("limits = %+v, want positive budget and workers", lim)
	}
	if len(lim.Priorities) != 2 || lim.Priorities[0] != "interactive" || lim.Priorities[1] != "batch" {
		t.Fatalf("priorities = %v, want [interactive batch]", lim.Priorities)
	}
	acme, ok := lim.Tenants["acme"]
	if !ok || acme.Weight != 3 {
		t.Fatalf("tenants[acme] = %+v (present %v), want weight 3", acme, ok)
	}

	before := s.qosState().Ticks
	s.TickQoS()
	resp, err = http.Get(ts.URL + api.PathDebugQOS)
	if err != nil {
		t.Fatal(err)
	}
	var dbg struct {
		Adaptive bool `json:"adaptive"`
		State    struct {
			Ticks int64 `json:"ticks"`
		} `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !dbg.Adaptive {
		t.Error("daemon with a byte budget should report adaptive QoS")
	}
	if dbg.State.Ticks != before+1 {
		t.Errorf("ticks = %d, want %d", dbg.State.Ticks, before+1)
	}
}

// TestQoSMetricsExposed: the szd_qos_* families must appear on /metrics
// with per-tenant series once a tenant has traffic.
func TestQoSMetricsExposed(t *testing.T) {
	s := New(Config{MaxInflightBytes: 64 << 20})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	raw, _ := makeRaw(t, grid.Float32, 8, 10)
	req, _ := http.NewRequest(http.MethodPost,
		ts.URL+api.PathCompress+"?codec=sz14&abs=1e-3&dtype=f32&dims=8,10",
		strings.NewReader(string(raw)))
	req.Header.Set(api.HeaderAPIKey, "acme.k1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status %d", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + api.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, mresp)
	for _, want := range []string{
		"szd_qos_budget_bytes ",
		"szd_qos_workers ",
		"szd_qos_retry_after_seconds ",
		"szd_qos_congested ",
		"szd_qos_ticks_total ",
		`szd_qos_tenant_admitted_total{tenant="acme"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}
