package server

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/codec"
	"repro/internal/grid"
)

// makeRaw builds a smooth field and returns its raw little-endian bytes.
func makeRaw(t *testing.T, dt grid.DType, dims ...int) ([]byte, *grid.Array) {
	t.Helper()
	a := grid.New(dims...)
	for i := range a.Data {
		v := math.Sin(float64(i) * 0.02)
		if dt == grid.Float32 {
			v = float64(float32(v))
		}
		a.Data[i] = v
	}
	var raw bytes.Buffer
	if err := a.WriteRaw(&raw, dt); err != nil {
		t.Fatal(err)
	}
	return raw.Bytes(), a
}

// localStream compresses raw through the registry's local streaming
// writer — the reference the daemon must match byte for byte.
func localStream(t *testing.T, name string, raw []byte, p codec.Params) []byte {
	t.Helper()
	c, err := codec.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	zw, err := c.NewWriter(&out, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func newTestDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAllClose(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRoundTripByteIdentical is the acceptance e2e: for sz14, blocked,
// and gzip, the daemon's /v1/compress output must be byte-identical to
// the local streaming writer, and /v1/decompress must return the exact
// raw reconstruction bytes.
func TestRoundTripByteIdentical(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}

	for _, name := range []string{"sz14", "blocked", "gzip"} {
		t.Run(name, func(t *testing.T) {
			want := localStream(t, name, raw, p)

			resp := post(t, ts.URL+"/v1/compress?codec="+name+"&abs=1e-3&dtype=f32&dims=16,20,12", raw)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("compress status %d: %s", resp.StatusCode, readAllClose(t, resp))
			}
			if got := resp.Header.Get(api.HeaderCodec); got != name {
				t.Errorf("codec header = %q, want %q", got, name)
			}
			stream := readAllClose(t, resp)
			if !bytes.Equal(stream, want) {
				t.Fatalf("remote stream differs from local: %d vs %d bytes", len(stream), len(want))
			}

			// Local reference reconstruction.
			c, _ := codec.Lookup(name)
			zr, err := c.NewReader(bytes.NewReader(want), p)
			if err != nil {
				t.Fatal(err)
			}
			wantRaw, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}

			durl := ts.URL + "/v1/decompress"
			if name == "gzip" {
				durl += "?codec=gzip&dtype=f32&dims=16,20,12"
			}
			dresp := post(t, durl, stream)
			if dresp.StatusCode != http.StatusOK {
				t.Fatalf("decompress status %d: %s", dresp.StatusCode, readAllClose(t, dresp))
			}
			gotRaw := readAllClose(t, dresp)
			if !bytes.Equal(gotRaw, wantRaw) {
				t.Fatalf("remote reconstruction differs from local: %d vs %d bytes", len(gotRaw), len(wantRaw))
			}
		})
	}
}

func TestUnknownCodecListsRegistered(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	resp := post(t, ts.URL+"/v1/compress?codec=bogus&dims=4&abs=1", []byte{1, 2, 3})
	body := string(readAllClose(t, resp))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	for _, name := range []string{"sz14", "blocked", "gzip"} {
		if !strings.Contains(body, name) {
			t.Errorf("error body %q does not list codec %s", body, name)
		}
	}
}

func TestMissingDims(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	resp := post(t, ts.URL+"/v1/compress?codec=sz14&abs=1e-3", []byte{1, 2, 3, 4})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	readAllClose(t, resp)
}

func TestHeaderFallbackParams(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 8, 10)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{8, 10}}
	want := localStream(t, "sz14", raw, p)

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compress", bytes.NewReader(raw))
	req.Header.Set(api.HeaderCodec, "sz14")
	req.Header.Set(api.HeaderDims, "8,10")
	req.Header.Set(api.HeaderDtype, "f32")
	req.Header.Set(api.ParamHeaderPrefix+"Abs", "1e-3")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if got := readAllClose(t, resp); !bytes.Equal(got, want) {
		t.Fatal("header-parameterized stream differs from local reference")
	}
}

func TestRequestTooLarge(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxRequestBytes: 1024})
	resp := post(t, ts.URL+"/v1/compress?codec=gzip", make([]byte, 4096))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	readAllClose(t, resp)
}

// trickleBody declares `total` bytes but blocks after a prefix until
// released, pinning its admission reservation.
type trickleBody struct {
	prefix  []byte
	rest    []byte
	release chan struct{}
	sent    bool
	mu      sync.Mutex
}

func (tb *trickleBody) Read(p []byte) (int, error) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if !tb.sent {
		tb.sent = true
		return copy(p, tb.prefix), nil
	}
	<-tb.release
	if len(tb.rest) == 0 {
		return 0, io.EOF
	}
	n := copy(p, tb.rest)
	tb.rest = tb.rest[n:]
	return n, nil
}

// TestLoadShedding is the acceptance load-shedding test: with the
// in-flight byte budget saturated by concurrent streaming requests, a
// new request is rejected with 429 well within the deadline instead of
// queuing, and once the holders finish the server admits work again.
func TestLoadShedding(t *testing.T) {
	// f32 sz14 charges 11x declared (1 + 40/4, see charge.go): two
	// 1 MiB holders reserve 22 MiB of the 24 MiB budget; a third 1 MiB
	// request needs 11 MiB more -> 429.
	_, ts := newTestDaemon(t, Config{MaxInflightBytes: 24 << 20, Workers: 64})
	const n = 1 << 20 / 4 // 1 MiB of f32
	raw, _ := makeRaw(t, grid.Float32, 64, n/64)
	url := ts.URL + fmt.Sprintf("/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=64,%d", n/64)

	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tb := &trickleBody{prefix: raw[:4096], rest: raw[4096:], release: release}
			req, _ := http.NewRequest(http.MethodPost, url, tb)
			req.ContentLength = int64(len(raw))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("holder got status %d", resp.StatusCode)
				return
			}
			errs <- nil
		}()
	}

	// Give both holders time to be admitted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body := string(readAllClose(t, resp))
		if strings.Contains(body, "szd_inflight_requests 2") {
			break
		}
		if time.Now().After(deadline) {
			close(release)
			t.Fatalf("holders never admitted; metrics:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Saturated: a new request must shed fast.
	start := time.Now()
	resp := post(t, url, raw)
	elapsed := time.Since(start)
	body := readAllClose(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if elapsed > 2*time.Second {
		t.Errorf("shed took %v, want fast rejection", elapsed)
	}

	// Drain the holders; they must complete and free the budget.
	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	resp = post(t, url, raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status %d, want 200", resp.StatusCode)
	}
	readAllClose(t, resp)
}

func TestWorkerPoolSheds(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxInflightBytes: -1, Workers: 1})
	raw, _ := makeRaw(t, grid.Float32, 8, 8)
	url := ts.URL + "/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=8,8"

	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tb := &trickleBody{prefix: raw[:16], rest: raw[16:], release: release}
		req, _ := http.NewRequest(http.MethodPost, url, tb)
		req.ContentLength = int64(len(raw))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(readAllClose(t, resp)), "szd_workers_busy 1") {
			break
		}
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("holder never took the worker token")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp := post(t, url, raw)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 when the worker pool is exhausted", resp.StatusCode)
	}
	readAllClose(t, resp)
	close(release)
	<-done
}

// syntheticReader yields n bytes of deterministic f32 samples without
// materializing them, so the test's own memory stays flat.
type syntheticReader struct {
	n   int64
	off int64
}

func (sr *syntheticReader) Read(p []byte) (int, error) {
	if sr.off >= sr.n {
		return 0, io.EOF
	}
	if int64(len(p)) > sr.n-sr.off {
		p = p[:sr.n-sr.off]
	}
	for i := range p {
		// Low-entropy bytes; the exact values are irrelevant here.
		p[i] = byte((sr.off + int64(i)) >> 6)
	}
	sr.off += int64(len(p))
	return len(p), nil
}

// TestBlockedStreamingMemoryBounded proves the blocked codec path never
// buffers a request end-to-end: a 64 MiB field flows through /v1/compress
// while the process heap grows by far less than the full-buffer cost
// (64 MiB raw + 128 MiB float64 array).
func TestBlockedStreamingMemoryBounded(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxInflightBytes: 96 << 20, Workers: 4})
	const rows, rowCells = 4096, 4096 // 64 MiB of f32
	rawSize := int64(rows * rowCells * 4)
	url := ts.URL + fmt.Sprintf("/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=%d,64,64&slab=64&workers=4", rows)

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak uint64
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	req, _ := http.NewRequest(http.MethodPost, url, &syntheticReader{n: rawSize})
	req.ContentLength = rawSize
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	close(stop)
	sampler.Wait()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, copy err %v", resp.StatusCode, err)
	}
	if n == 0 {
		t.Fatal("no compressed output")
	}
	growth := int64(peak) - int64(base.HeapAlloc)
	// Full buffering would pin >= 192 MiB (raw + float64 working set);
	// slab streaming with 4 workers x 64-row slabs needs ~20 MiB. The
	// 64 MiB threshold leaves generous slack for GC laziness while
	// still catching any per-request full-buffer regression.
	if growth > 64<<20 {
		t.Errorf("heap grew %d MiB during streaming compress; blocked path is buffering (want < 64 MiB)", growth>>20)
	}
	t.Logf("raw %d MiB, peak heap growth %d MiB, compressed %d bytes", rawSize>>20, growth>>20, n)
}

func TestDrain(t *testing.T) {
	s, ts := newTestDaemon(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d before drain", resp.StatusCode)
	}
	readAllClose(t, resp)

	s.StartDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d after drain, want 503", resp.StatusCode)
	}
	readAllClose(t, resp)

	raw, _ := makeRaw(t, grid.Float32, 8, 8)
	cresp := post(t, ts.URL+"/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=8,8", raw)
	if cresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("compress during drain got %d, want 503", cresp.StatusCode)
	}
	readAllClose(t, cresp)
}

func TestInspectEndpoint(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 16, 20, 12)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{16, 20, 12}}
	stream := localStream(t, "blocked", raw, p)

	want, err := codec.InspectStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	resp := post(t, ts.URL+"/v1/inspect", stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	var got codec.StreamInfo
	if err := json.Unmarshal(readAllClose(t, resp), &got); err != nil {
		t.Fatal(err)
	}
	if got.Codec != want.Codec || got.Bytes != want.Bytes || got.Slabs != want.Slabs ||
		got.SlabRows != want.SlabRows || got.DType != want.DType {
		t.Errorf("remote inspect %+v differs from local %+v", got, *want)
	}
}

func TestCodecsEndpoint(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/codecs")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Codecs []string `json:"codecs"`
	}
	if err := json.Unmarshal(readAllClose(t, resp), &body); err != nil {
		t.Fatal(err)
	}
	want := codec.Names()
	if len(body.Codecs) != len(want) {
		t.Fatalf("got %v, want %v", body.Codecs, want)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 8, 8)
	resp := post(t, ts.URL+"/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=8,8", raw)
	readAllClose(t, resp)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readAllClose(t, mresp))
	for _, want := range []string{
		`szd_requests_total{endpoint="compress",codec="sz14",status="200"} 1`,
		`szd_bytes_in_total{endpoint="compress"} 256`,
		"szd_inflight_requests 0",
		"szd_inflight_bytes 0",
		"szd_workers_busy 0",
		`szd_request_seconds_bucket{endpoint="compress",codec="sz14",le="+Inf"} 1`,
		`szd_request_seconds_count{endpoint="compress",codec="sz14"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestChunkedNoLengthAdmitted: a length-less chunked upload on an
// idle default-config daemon must be admitted (charged the flat
// unknown-length charge, with no buffered-codec multiplier stacked on
// top, which used to push the charge past the budget and 429 it).
func TestChunkedNoLengthAdmitted(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	raw, _ := makeRaw(t, grid.Float32, 8, 8)
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{8, 8}}
	want := localStream(t, "sz14", raw, p)

	// io.MultiReader hides the length, forcing Transfer-Encoding:
	// chunked with no Content-Length.
	req, _ := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=8,8",
		io.MultiReader(bytes.NewReader(raw)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunked upload status %d: %s", resp.StatusCode, readAllClose(t, resp))
	}
	if got := readAllClose(t, resp); !bytes.Equal(got, want) {
		t.Fatal("chunked-upload stream differs from local reference")
	}
}

// TestImpossibleChargeIs413: a request whose memory estimate exceeds
// the whole budget is a permanent 413, not a retryable 429.
func TestImpossibleChargeIs413(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxInflightBytes: 1 << 20})
	// 4 MiB declared f32 sz14 -> 12 MiB charge >> 1 MiB budget.
	req, _ := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/compress?codec=sz14&abs=1e-3&dtype=f32&dims=1024,1024",
		bytes.NewReader(make([]byte, 4<<20)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	readAllClose(t, resp)
}

// TestStreamingBodyNotMetered: a chunked gzip stream far larger than
// the byte budget flows through — streaming paths pin O(window) memory
// and must not be charged per body byte mid-stream — and the output
// must decompress back to the exact input. The round-trip check is
// load-bearing: without full-duplex handling, Go's HTTP/1 server
// silently discards 256 KiB of a chunked body at the first response
// flush and still answers 200 with corrupt data.
func TestStreamingBodyNotMetered(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxInflightBytes: 4 << 20, MaxRequestBytes: -1})
	const n = 16 << 20
	req, _ := http.NewRequest(http.MethodPost,
		ts.URL+"/v1/compress?codec=gzip", &syntheticReader{n: n})
	// No ContentLength: chunked, length unknown to admission.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out := readAllClose(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	zr, err := gzip.NewReader(bytes.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	back, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(&syntheticReader{n: n})
	if !bytes.Equal(back, want) {
		t.Fatalf("chunked streaming round trip corrupt: %d of %d input bytes survived", len(back), len(want))
	}
}

// TestBlockedChargeNotHintReducible: a lying (tiny) declared length
// must not shrink the blocked streaming charge below its floor — the
// cap comes from the server-computed array footprint, not the client
// hint.
func TestBlockedChargeNotHintReducible(t *testing.T) {
	s := New(Config{})
	p := codec.Params{AbsBound: 1e-3, DType: grid.Float32, Dims: []int{100, 500, 500}}
	charge, streaming := s.compressCharge("blocked", 0, p)
	if !streaming {
		t.Fatal("blocked abs-bound compress should be the streaming path")
	}
	if charge < 1<<20 {
		t.Errorf("charge %d with a zero-length hint; must stay at or above the streaming floor", charge)
	}
}

// errAfterReader yields n bytes then fails, simulating a producer that
// dies mid-upload.
type errAfterReader struct {
	n   int64
	off int64
}

func (er *errAfterReader) Read(p []byte) (int, error) {
	if er.off >= er.n {
		return 0, fmt.Errorf("synthetic producer failure")
	}
	if int64(len(p)) > er.n-er.off {
		p = p[:er.n-er.off]
	}
	er.off += int64(len(p))
	return len(p), nil
}

// TestAbortedCompressDoesNotLeakGoroutines: an upload that dies
// mid-stream must still tear down the blocked writer's worker/emit
// goroutines (each leak would pin GOMAXPROCS+1 goroutines plus slab
// memory for the daemon's lifetime).
func TestAbortedCompressDoesNotLeakGoroutines(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		req, _ := http.NewRequest(http.MethodPost,
			ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=1024,64,64&slab=16",
			&errAfterReader{n: 1 << 20})
		req.ContentLength = 1024 * 64 * 64 * 4
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+3 {
		time.Sleep(50 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+5 {
		t.Errorf("goroutines %d -> %d after 5 aborted blocked uploads (writer leak)", before, got)
	}
}

// TestHostileDimsOverflowRejected: dims whose byte size overflows int64
// must be rejected 413 up front, not wrap into a tiny (or negative)
// admission charge that bypasses the budget.
func TestHostileDimsOverflowRejected(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxInflightBytes: 100 << 20})
	resp := post(t,
		ts.URL+"/v1/compress?codec=blocked&abs=1e-3&dtype=f32&dims=3000000000,3000000000,3000000000",
		[]byte{1, 2, 3, 4})
	body := readAllClose(t, resp)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, body)
	}
}

// TestBlockedDecompressChargeFromHeader: the decompress charge must
// scale with the container's actual slab geometry (read from the
// stream header), so a single-slab container compressed client-side
// cannot sneak a whole-array decompression past a small flat charge.
func TestBlockedDecompressChargeFromHeader(t *testing.T) {
	s := New(Config{})
	raw, _ := makeRaw(t, grid.Float32, 64, 32, 32)
	oneSlab := localStream(t, "blocked", raw, codec.Params{
		AbsBound: 1e-3, DType: grid.Float32, Dims: []int{64, 32, 32}, SlabRows: 64})
	manySlabs := localStream(t, "blocked", raw, codec.Params{
		AbsBound: 1e-3, DType: grid.Float32, Dims: []int{64, 32, 32}, SlabRows: 4})

	big, _ := s.decompressCharge("blocked", int64(len(oneSlab)), oneSlab)
	small, _ := s.decompressCharge("blocked", int64(len(manySlabs)), manySlabs)
	// 64x32x32 cells x 48 B/cell = 3 MiB for the single slab; the
	// 4-row slabs stay under the 1 MiB floor.
	if want := int64(64 * 32 * 32 * 48); big != want {
		t.Errorf("single-slab charge %d, want %d (slab geometry from header)", big, want)
	}
	if small != 1<<20 {
		t.Errorf("small-slab charge %d, want the 1 MiB floor", small)
	}
	// A garbage header falls back to the floor, never panics.
	if c, _ := s.decompressCharge("blocked", 10, []byte("SZB2\xff")); c != 1<<20 {
		t.Errorf("corrupt-header charge %d, want floor", c)
	}
}
