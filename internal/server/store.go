package server

// Content-addressed serving: the glue between the HTTP surface and
// internal/store that turns repeat reads into a read-mostly path.
//
// Every finished container szd produces (compress responses) or fully
// consumes (decompress/slab bodies) is persisted in the store under its
// payload SHA-256, and the digest travels back as the response ETag —
// as a trailer on streaming responses, a header on buffered ones. From
// then on a client can reference the container by digest alone
// (?digest= or X-Sz-Digest) and the daemon serves slab reads straight
// off the mmap'd entry: no upload, no whole-container CRC (the digest
// vouched for the bytes at write time), no decode when the client
// accepts compressed slab bytes (Accept: application/x-sz-slab), and an
// admission charge that reflects the near-zero heap such a read pins.
// If-None-Match against a content-addressed ETag is answered 304
// unconditionally — identical digest means identical bytes, stored or
// not.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/blocked"
	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/scratch"
	"repro/internal/store"
)

// SlabContentType is the media type for compressed slab extents: the
// concatenated core streams of the requested slab range, exactly as
// they sit in the container body.
const SlabContentType = api.MediaTypeSlabExtent

const (
	// mmapReadCharge is the admission charge for responses served as
	// slices of an mmap'd store entry: the copy buffer and response
	// plumbing, not the payload (which pins page cache, not heap).
	mmapReadCharge = 256 << 10
	// storePutCharge covers the streaming disk write of a PUT
	// /v1/container body: one copy buffer; the payload goes to disk.
	storePutCharge = 512 << 10
)

// requestDigest extracts a content-address reference from the request
// (?digest= query value or X-Sz-Digest header), validating its shape.
func requestDigest(r *http.Request) (string, error) {
	d := r.URL.Query().Get(api.QueryDigest)
	if d == "" {
		d = r.Header.Get(api.HeaderDigest)
	}
	if d == "" {
		return "", nil
	}
	if !store.ValidDigest(d) {
		return "", fmt.Errorf("malformed digest %q (want 64 lowercase hex chars)", d)
	}
	return d, nil
}

// etagFor renders a container digest as a strong ETag.
func etagFor(digest string) string { return `"` + digest + `"` }

// ifNoneMatchHas reports whether the request's If-None-Match field
// matches etag. Content-addressed responses are immutable, so a match
// always means 304 — the client already holds these exact bytes.
func ifNoneMatchHas(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, part := range strings.Split(inm, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// notModified answers a conditional request whose ETag matched.
func (s *Server) notModified(w http.ResponseWriter, endpoint, codecName, etag string, start time.Time) {
	w.Header().Set("Etag", etag)
	w.WriteHeader(http.StatusNotModified)
	s.met.record(endpoint, codecName, http.StatusNotModified, 0, 0, time.Since(start))
}

// storePut persists payload best-effort (a full store or failing disk
// must never fail the request being served) and returns the digest
// ("" when the store is absent or the write failed).
func (s *Server) storePut(payload []byte) string {
	if s.cfg.Store == nil {
		return ""
	}
	d, err := s.cfg.Store.Put(payload)
	if err != nil {
		return ""
	}
	return d
}

// bestEffortPut tees a response stream into a store putter without ever
// failing the response: the first write error abandons the put and the
// tee degrades to a no-op.
type bestEffortPut struct {
	p      *store.Putter
	t      *obs.Trace // when set, store writes aggregate as "store_write"
	failed bool
}

func (b *bestEffortPut) Write(d []byte) (int, error) {
	if !b.failed {
		var t0 time.Time
		if b.t != nil {
			t0 = time.Now()
		}
		if _, err := b.p.Write(d); err != nil {
			b.failed = true
			b.p.Abort()
		}
		if b.t != nil {
			b.t.Observe("store_write", time.Since(t0))
		}
	}
	return len(d), nil
}

// commit finalizes the tee'd put and returns the digest ("" on any
// earlier failure). abort discards it.
func (b *bestEffortPut) commit() string {
	if b.failed {
		return ""
	}
	var t0 time.Time
	if b.t != nil {
		t0 = time.Now()
	}
	d, err := b.p.Commit("")
	if b.t != nil {
		b.t.Observe("store_write", time.Since(t0))
	}
	if err != nil {
		return ""
	}
	return d
}

func (b *bestEffortPut) abort() {
	if !b.failed {
		b.failed = true
		b.p.Abort()
	}
}

// openStoreEntry resolves a digest-referenced request against the
// store: (nil, true) when the request was fully answered (304, 404, or
// a malformed digest), (entry, true) with the response still to write
// on a hit. The X-Sz-Store header tells routers and tests whether the
// tier-2 disk store answered. A 304 needs no store access at all — the
// digest names the bytes, so a matching If-None-Match is decisive even
// for an entry that was evicted.
func (s *Server) openStoreEntry(w http.ResponseWriter, r *http.Request, endpoint string, start time.Time) (*store.Entry, bool) {
	digest, err := requestDigest(r)
	if err != nil {
		s.reject(w, endpoint, "", http.StatusBadRequest, err, start)
		return nil, true
	}
	if digest == "" {
		return nil, false // body-carrying request
	}
	etag := etagFor(digest)
	if ifNoneMatchHas(r, etag) {
		s.notModified(w, endpoint, "", etag, start)
		return nil, true
	}
	if s.cfg.Store == nil {
		s.reject(w, endpoint, "", http.StatusNotFound,
			fmt.Errorf("digest-referenced reads need a store (-store-dir)"), start)
		return nil, true
	}
	sp := obs.FromContext(r.Context()).StartSpan("store_read")
	ent, err := s.cfg.Store.Get(digest)
	sp.End()
	if err != nil {
		w.Header().Set(api.HeaderStore, "miss")
		status := http.StatusNotFound
		if !errors.Is(err, store.ErrNotFound) {
			status = http.StatusInternalServerError
		}
		s.reject(w, endpoint, "", status, fmt.Errorf("container %s not in store", digest), start)
		return nil, true
	}
	w.Header().Set(api.HeaderStore, "hit")
	w.Header().Set("Etag", etag)
	return ent, true
}

// serveDecompressFromStore answers a digest-referenced decompress off
// the mmap'd entry: no upload, no buffered container copy for the
// streaming codecs — the charge is the decode window alone.
func (s *Server) serveDecompressFromStore(w http.ResponseWriter, r *http.Request, tr *obs.Trace, ent *store.Entry, p codec.Params, forced string, start time.Time) {
	defer ent.Release()
	stream := ent.Bytes()
	var c codec.Codec
	var err error
	if forced != "" {
		c, err = codec.Lookup(forced)
	} else {
		c, err = codec.Detect(stream)
	}
	if err != nil {
		s.reject(w, "decompress", forced, http.StatusBadRequest, err, start)
		return
	}
	name := c.Name()
	// The header parsers read a bounded prefix; handing them the whole
	// mapped stream skips the peek-reader dance of the body path.
	charge, _ := s.decompressCharge(name, int64(len(stream)), stream)
	gr, status, err := s.admit(r.Context(), tr, charge, 1)
	if err != nil {
		s.reject(w, "decompress", name, status, err, start)
		return
	}
	defer gr.release()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(api.HeaderCodec, name)
	out := &respWriter{ResponseWriter: w}
	zr, err := c.NewReader(bytes.NewReader(stream), p)
	if err != nil {
		s.reject(w, "decompress", name, streamErrStatus(err), err, start)
		return
	}
	cbuf := scratch.Bytes(streamCopyBuffer)
	defer scratch.PutBytes(cbuf)
	sp := tr.StartSpan("decode")
	_, err = io.CopyBuffer(out, zr, cbuf)
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	sp.End()
	s.finishStream(w, out, "decompress", name, 0, err, start)
}

// serveSlabsFromStore answers /v1/slabs for a digest-referenced
// container: footer-index JSON from the mmap'd entry, no CRC walk.
func (s *Server) serveSlabsFromStore(w http.ResponseWriter, r *http.Request, ent *store.Entry, start time.Time) {
	defer ent.Release()
	gr, status, err := s.admit(r.Context(), obs.FromContext(r.Context()), mmapReadCharge, 1)
	if err != nil {
		s.reject(w, "slabs", "", status, err, start)
		return
	}
	defer gr.release()
	ix, err := s.storedIndex(ent)
	if err != nil {
		s.reject(w, "slabs", "", http.StatusBadRequest, err, start)
		return
	}
	resp, err := json.Marshal(codec.SlabIndexFrom(ent.Bytes(), ix))
	if err != nil {
		s.reject(w, "slabs", "blocked", http.StatusInternalServerError, err, start)
		return
	}
	resp = append(resp, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
	s.met.record("slabs", "blocked", http.StatusOK, 0, int64(len(resp)), time.Since(start))
}

// storedIndex parses a store entry's container index. The entry's
// integrity was digest-verified when it was written, so the
// O(container) CRC pass is skipped — this is most of the non-decode
// saving on the warm path.
func (s *Server) storedIndex(ent *store.Entry) (*blocked.Index, error) {
	if _, err := codec.Detect(ent.Bytes()); err != nil {
		return nil, err
	}
	ix, err := blocked.InspectNoVerify(ent.Bytes())
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// wantsCompressedSlab reports whether the client asked for the raw
// compressed extent rather than decoded samples.
func wantsCompressedSlab(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mt, _, _ := strings.Cut(strings.TrimSpace(part), ";"); mt == SlabContentType {
			return true
		}
	}
	return false
}

// serveSlabFromStore answers /v1/slab/{spec} for a digest-referenced
// container off the mmap'd entry: the compressed extent zero-copy when
// the client accepts it, decoded samples otherwise.
func (s *Server) serveSlabFromStore(w http.ResponseWriter, r *http.Request, ent *store.Entry, lo, hi int, start time.Time) {
	defer ent.Release()
	ix, err := s.storedIndex(ent)
	if err != nil {
		s.reject(w, "slab", "", http.StatusBadRequest, err, start)
		return
	}
	tr := obs.FromContext(r.Context())
	if wantsCompressedSlab(r) && !ix.SharedCodebook() {
		gr, status, err := s.admit(r.Context(), tr, mmapReadCharge, 1)
		if err != nil {
			s.reject(w, "slab", "blocked", status, err, start)
			return
		}
		defer gr.release()
		s.serveSlabExtent(w, tr, ent.Bytes(), ix, lo, hi, 0, start)
		return
	}
	// Raw samples: charge the decode footprint only — the container
	// itself is mmap'd, so unlike the body path no buffered copy pins
	// the budget.
	gr, status, err := s.admit(r.Context(), tr, s.slabDecodeCharge(ix, lo, hi), 1)
	if err != nil {
		s.reject(w, "slab", "blocked", status, err, start)
		return
	}
	defer gr.release()
	sp := tr.StartSpan("decode")
	arr, dt, err := blocked.DecompressSlabRangeIndexed(ent.Bytes(), ix, lo, hi)
	sp.End()
	if err != nil {
		s.rejectSlabErr(w, err, start)
		return
	}
	s.writeSlabRaw(w, arr, dt, lo, hi, 0, start)
}

// serveSlabExtent writes the compressed byte extent of slabs lo..hi —
// a pure slice of the container, the zero-copy fast path. The caller
// holds the admission grant.
func (s *Server) serveSlabExtent(w http.ResponseWriter, tr *obs.Trace, stream []byte, ix *blocked.Index, lo, hi int, bytesIn int64, start time.Time) {
	off, end, err := ix.SlabExtent(lo, hi)
	if err != nil {
		s.rejectSlabErr(w, err, start)
		return
	}
	rowLo, _ := ix.SlabBounds(lo)
	_, rowHi := ix.SlabBounds(hi)
	dims := append([]int(nil), ix.Dims...)
	dims[0] = rowHi - rowLo
	w.Header().Set("Content-Type", SlabContentType)
	w.Header().Set(api.HeaderCodec, "blocked")
	w.Header().Set(api.HeaderDims, codec.FormatDims(dims))
	w.Header().Set(api.HeaderSlabs, codec.FormatSlabSpec(lo, hi))
	w.Header().Set(api.HeaderSlabLengths, formatSlabLengths(ix, lo, hi))
	out := &respWriter{ResponseWriter: w}
	sp := tr.StartSpan("mmap_serve")
	_, err = out.Write(stream[off:end])
	sp.End()
	s.finishStream(w, out, "slab", "blocked", bytesIn, err, start)
}

// formatSlabLengths renders the per-slab stream lengths of lo..hi as a
// comma list so an extent's receiver can split it without re-fetching
// the index.
func formatSlabLengths(ix *blocked.Index, lo, hi int) string {
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		if i > lo {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", ix.Offsets[i+1]-ix.Offsets[i])
	}
	return b.String()
}

// slabDecodeCharge is the decode-only admission charge for a slab range
// (the calibrated 24 B/cell of slabCharge without the buffered-body
// base).
func (s *Server) slabDecodeCharge(ix *blocked.Index, lo, hi int) int64 {
	rowCells := int64(1)
	for _, d := range ix.Dims[1:] {
		rowCells = satMul(rowCells, int64(d))
	}
	rows := satMul(int64(hi-lo+1), int64(ix.SlabRows))
	if rows > int64(ix.Dims[0]) {
		rows = int64(ix.Dims[0])
	}
	c := satMul(satMul(rows, rowCells), 24)
	if c < mmapReadCharge {
		c = mmapReadCharge
	}
	return c
}

// rejectSlabErr maps slab decode errors to their status (416 for a
// well-formed range beyond the container, 400 otherwise).
func (s *Server) rejectSlabErr(w http.ResponseWriter, err error, start time.Time) {
	status := http.StatusBadRequest
	if errors.Is(err, blocked.ErrSlabRange) {
		status = http.StatusRequestedRangeNotSatisfiable
	}
	s.reject(w, "slab", "blocked", status, err, start)
}

// writeSlabRaw streams a decoded slab range as raw samples.
func (s *Server) writeSlabRaw(w http.ResponseWriter, arr *grid.Array, dt grid.DType, lo, hi int, bytesIn int64, start time.Time) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(api.HeaderCodec, "blocked")
	w.Header().Set(api.HeaderDtype, dt.String())
	w.Header().Set(api.HeaderDims, codec.FormatDims(arr.Dims))
	w.Header().Set(api.HeaderSlabs, codec.FormatSlabSpec(lo, hi))
	out := &respWriter{ResponseWriter: w}
	err := arr.WriteRaw(out, dt)
	s.finishStream(w, out, "slab", "blocked", bytesIn, err, start)
}

// handleContainer is the peer-fill/admin surface of the store:
//
//	GET  /v1/container/{digest}  the stored container bytes, or 404
//	HEAD /v1/container/{digest}  204 if stored, 404 otherwise
//	PUT  /v1/container/{digest}  store the body under digest (digest-verified)
//
// Routers use it to migrate entries between backends when ring affinity
// moves, so a slab read on a freshly-assigned owner can be answered
// from a peer's disk instead of recomputing. HEAD is the replicator's
// existence probe: a GET answers 304 on If-None-Match whether or not
// the entry is stored (the digest names the bytes), so only HEAD tells
// a copier whether the target actually holds them.
func (s *Server) handleContainer(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	digest := strings.TrimPrefix(r.URL.Path, api.PathContainerPrefix)
	if !store.ValidDigest(digest) {
		s.reject(w, "container", "", http.StatusBadRequest,
			fmt.Errorf("malformed digest %q", digest), start)
		return
	}
	if s.cfg.Store == nil {
		s.reject(w, "container", "", http.StatusNotFound,
			fmt.Errorf("no store configured (-store-dir)"), start)
		return
	}
	switch r.Method {
	case http.MethodHead:
		if !s.cfg.Store.Contains(digest) {
			w.Header().Set(api.HeaderStore, "miss")
			w.WriteHeader(http.StatusNotFound)
			s.met.record("container", "", http.StatusNotFound, 0, 0, time.Since(start))
			return
		}
		w.Header().Set(api.HeaderStore, "hit")
		w.Header().Set("Etag", etagFor(digest))
		w.WriteHeader(http.StatusNoContent)
		s.met.record("container", "", http.StatusNoContent, 0, 0, time.Since(start))
	case http.MethodGet:
		etag := etagFor(digest)
		if ifNoneMatchHas(r, etag) {
			s.notModified(w, "container", "", etag, start)
			return
		}
		sp := obs.FromContext(r.Context()).StartSpan("store_read")
		ent, err := s.cfg.Store.Get(digest)
		sp.End()
		if err != nil {
			w.Header().Set(api.HeaderStore, "miss")
			s.reject(w, "container", "", http.StatusNotFound, fmt.Errorf("container %s not in store", digest), start)
			return
		}
		defer ent.Release()
		gr, status, err := s.admit(r.Context(), obs.FromContext(r.Context()), mmapReadCharge, 1)
		if err != nil {
			s.reject(w, "container", "", status, err, start)
			return
		}
		defer gr.release()
		w.Header().Set(api.HeaderStore, "hit")
		w.Header().Set("Etag", etag)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprintf("%d", ent.Size()))
		out := &respWriter{ResponseWriter: w}
		_, err = out.Write(ent.Bytes())
		s.finishStream(w, out, "container", "", 0, err, start)
	case http.MethodPut:
		declared := declaredLength(r)
		if s.cfg.MaxRequestBytes > 0 && declared > s.cfg.MaxRequestBytes {
			s.reject(w, "container", "", http.StatusRequestEntityTooLarge, errTooLarge, start)
			return
		}
		gr, status, err := s.admit(r.Context(), obs.FromContext(r.Context()), storePutCharge, 1)
		if err != nil {
			s.reject(w, "container", "", status, err, start)
			return
		}
		defer gr.release()
		if s.cfg.Store.Contains(digest) {
			w.WriteHeader(http.StatusNoContent)
			s.met.record("container", "", http.StatusNoContent, 0, 0, time.Since(start))
			return
		}
		put, err := s.cfg.Store.NewPut()
		if err != nil {
			s.reject(w, "container", "", http.StatusInternalServerError, err, start)
			return
		}
		body := newMeteredReader(r.Body, gr, declared, storePutCharge, s.cfg.MaxRequestBytes, 1, true)
		cbuf := scratch.Bytes(streamCopyBuffer)
		sp := obs.FromContext(r.Context()).StartSpan("store_write")
		n, err := io.CopyBuffer(put, body, cbuf)
		sp.End()
		scratch.PutBytes(cbuf)
		if err != nil {
			put.Abort()
			s.reject(w, "container", "", streamErrStatus(err), err, start)
			return
		}
		if _, err := put.Commit(digest); err != nil {
			// The body hashed to something else: the upload is corrupt
			// (or mislabeled) and was not stored.
			s.reject(w, "container", "", http.StatusBadRequest, err, start)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		s.met.record("container", "", http.StatusNoContent, n, 0, time.Since(start))
	default:
		w.Header().Set("Allow", "GET, HEAD, PUT")
		s.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET, HEAD, or PUT"))
	}
}

// handleContainers lists the store's inventory:
//
//	GET /v1/containers  {"digests": ["...", ...]}
//
// It is the anti-entropy sweep's read side: the router lists every
// backend, computes which digests are under-replicated for the current
// ring, and copies them where they belong. The listing is a snapshot —
// entries may be evicted between the list and a later read — so
// consumers must treat a subsequent 404 as normal, not as corruption.
func (s *Server) handleContainers(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if s.cfg.Store == nil {
		s.reject(w, "containers", "", http.StatusNotFound,
			fmt.Errorf("no store configured (-store-dir)"), start)
		return
	}
	resp, err := json.Marshal(struct {
		Digests []string `json:"digests"`
	}{Digests: s.cfg.Store.Digests()})
	if err != nil {
		s.reject(w, "containers", "", http.StatusInternalServerError, err, start)
		return
	}
	resp = append(resp, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Write(resp)
	s.met.record("containers", "", http.StatusOK, 0, int64(len(resp)), time.Since(start))
}

// bodyDigest hashes a buffered container body — the same digest the
// router computed for ring placement and the client can compute
// locally, so the three tiers agree on the name for these bytes.
func bodyDigest(stream []byte) string {
	sum := sha256.Sum256(stream)
	return hex.EncodeToString(sum[:])
}
