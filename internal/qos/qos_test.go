package qos

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// plant simulates the daemon the controller steers: a service with a
// true concurrency capacity of capBytes. While admitted load stays
// under capacity, latency sits at base; past it, latency scales with
// the overcommit ratio (queueing). Offered load always saturates the
// budget, so the budget is the only thing deciding how hard the plant
// is pushed.
type plant struct {
	capBytes int64
	base     float64
	fast     *obs.EWMA
	slow     *obs.EWMA
}

func newPlant(capBytes int64) *plant {
	return &plant{capBytes: capBytes, base: 0.010, fast: obs.NewEWMA(0.5), slow: obs.NewEWMA(0.05)}
}

func (p *plant) tick(budget int64) Signals {
	inflight := budget // flood: offered load saturates whatever is admitted
	lat := p.base
	if inflight > p.capBytes {
		lat = p.base * float64(inflight) / float64(p.capBytes)
	}
	p.fast.Observe(lat)
	p.slow.Observe(lat)
	return Signals{
		InflightBytes: inflight,
		ShedDelta:     8, // flood: always rejecting surplus
		FastLatency:   p.fast.Value(),
		SlowLatency:   p.slow.Value(),
	}
}

// TestBudgetConverges drives the controller against the plant for 400
// ticks and asserts the ISSUE's convergence criterion: the second half
// of the run stays inside a ±15% band around its own mean — the loop
// parks near the knee instead of sawtoothing across it — and the knee
// it finds is the latency-tolerance point, not a rail.
func TestBudgetConverges(t *testing.T) {
	const capacity = int64(256 << 20)
	cfg := Config{
		MinBudget:     32 << 20,
		MaxBudget:     2 << 30,
		InitialBudget: 64 << 20,
		Increase:      8 << 20,
	}
	c := New(cfg)
	p := newPlant(capacity)

	budget := c.State().BudgetBytes
	var trace []int64
	for i := 0; i < 400; i++ {
		st := c.Tick(p.tick(budget))
		budget = st.BudgetBytes
		trace = append(trace, budget)
	}

	half := trace[len(trace)/2:]
	var sum int64
	for _, b := range half {
		sum += b
	}
	mean := sum / int64(len(half))
	for i, b := range half {
		dev := float64(b-mean) / float64(mean)
		if dev < -0.15 || dev > 0.15 {
			t.Fatalf("tick %d: budget %d deviates %.1f%% from settled mean %d (±15%% band)",
				len(trace)/2+i, b, 100*dev, mean)
		}
	}
	// The settled point must be a real operating point: above the
	// plant's capacity floor, far below the configured max rail.
	if mean < capacity || mean > cfg.MaxBudget/2 {
		t.Fatalf("settled mean %d outside plausible knee range (capacity %d, max %d)",
			mean, capacity, cfg.MaxBudget)
	}
	st := c.State()
	if st.Cuts == 0 || st.Grows == 0 {
		t.Fatalf("controller never exercised both directions: %+v", st)
	}
}

// TestHysteresisIgnoresNoise: a single congested tick between healthy
// ones must not cut the budget, and alternating signals must not move
// it at all — that is the oscillation failure mode the streak
// thresholds exist to prevent.
func TestHysteresisIgnoresNoise(t *testing.T) {
	cfg := Config{MinBudget: 1 << 20, MaxBudget: 1 << 30, InitialBudget: 512 << 20, CongestedTicks: 3}
	c := New(cfg)
	start := c.State().BudgetBytes

	healthy := Signals{InflightBytes: 1 << 20, FastLatency: 0.01, SlowLatency: 0.01}
	// Seed the baseline with healthy latency first.
	for i := 0; i < 5; i++ {
		c.Tick(healthy)
	}
	congested := Signals{InflightBytes: 500 << 20, FastLatency: 0.10, SlowLatency: 0.01}
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			c.Tick(congested)
		} else {
			c.Tick(healthy)
		}
	}
	if got := c.State().BudgetBytes; got != start {
		t.Fatalf("alternating noise moved budget %d -> %d; hysteresis should hold it", start, got)
	}
	if c.State().Cuts != 0 {
		t.Fatalf("noise produced %d cuts", c.State().Cuts)
	}

	// A sustained congested run must cut.
	for i := 0; i < cfg.CongestedTicks; i++ {
		c.Tick(congested)
	}
	if got := c.State().BudgetBytes; got >= start {
		t.Fatalf("sustained congestion did not cut budget (still %d)", got)
	}
	if !c.State().Congested {
		t.Fatal("state not marked congested after a cut")
	}
}

// TestIdleHolds: a healthy, mostly idle daemon must not grow its
// budget to the max rail — growth requires the budget to be binding.
func TestIdleHolds(t *testing.T) {
	cfg := Config{MinBudget: 1 << 20, MaxBudget: 1 << 30, InitialBudget: 128 << 20}
	c := New(cfg)
	idle := Signals{InflightBytes: 1 << 20, FastLatency: 0.01, SlowLatency: 0.01}
	for i := 0; i < 50; i++ {
		c.Tick(idle)
	}
	if got := c.State().BudgetBytes; got != 128<<20 {
		t.Fatalf("idle daemon moved budget to %d", got)
	}
}

// TestRetryAfterTracksPressure: the hint doubles under sustained
// congestion, decays when clear, and respects both clamps.
func TestRetryAfterTracksPressure(t *testing.T) {
	cfg := Config{
		MinBudget: 1 << 20, MaxBudget: 1 << 30, InitialBudget: 512 << 20,
		MinRetryAfter: 100 * time.Millisecond, MaxRetryAfter: 2 * time.Second,
	}
	c := New(cfg)
	healthy := Signals{InflightBytes: 1 << 20, FastLatency: 0.01, SlowLatency: 0.01}
	for i := 0; i < 5; i++ {
		c.Tick(healthy)
	}
	congested := Signals{InflightBytes: 500 << 20, FastLatency: 0.10, SlowLatency: 0.01}
	for i := 0; i < 40; i++ {
		c.Tick(congested)
	}
	if got := c.State().RetryAfter; got != cfg.MaxRetryAfter {
		t.Fatalf("sustained congestion RetryAfter = %v, want clamped %v", got, cfg.MaxRetryAfter)
	}
	for i := 0; i < 60; i++ {
		c.Tick(healthy)
	}
	if got := c.State().RetryAfter; got != cfg.MinRetryAfter {
		t.Fatalf("recovered RetryAfter = %v, want decayed to %v", got, cfg.MinRetryAfter)
	}
	if c.State().Congested {
		t.Fatal("still marked congested after a long healthy run")
	}
}

// TestWorkerClampRecovers: workers step down under congestion and
// climb back when clear.
func TestWorkerClampRecovers(t *testing.T) {
	cfg := Config{
		MinBudget: 1 << 20, MaxBudget: 1 << 30, InitialBudget: 512 << 20,
		MinWorkers: 2, MaxWorkers: 8,
	}
	c := New(cfg)
	if got := c.State().Workers; got != 8 {
		t.Fatalf("initial workers = %d, want 8", got)
	}
	healthy := Signals{InflightBytes: 1 << 20, FastLatency: 0.01, SlowLatency: 0.01}
	for i := 0; i < 5; i++ {
		c.Tick(healthy)
	}
	congested := Signals{InflightBytes: 500 << 20, FastLatency: 0.10, SlowLatency: 0.01}
	for i := 0; i < 100; i++ {
		c.Tick(congested)
	}
	if got := c.State().Workers; got != cfg.MinWorkers {
		t.Fatalf("workers under sustained congestion = %d, want floor %d", got, cfg.MinWorkers)
	}
	for i := 0; i < 100; i++ {
		c.Tick(healthy)
	}
	if got := c.State().Workers; got != cfg.MaxWorkers {
		t.Fatalf("workers after recovery = %d, want %d", got, cfg.MaxWorkers)
	}
}
