// Package qos is szd's off-path admission control loop. It follows
// the CCP split: the datapath only measures (per-request latency into
// an obs.EWMA pair, shed counts, in-flight bytes), and this controller
// folds those signals at a fixed cadence into three rate decisions the
// governor reads back — the admission byte budget, the worker clamp,
// and the Retry-After hint attached to sheds.
//
// The fold is AIMD with hysteresis. Additive increase probes for
// headroom only while the budget is actually binding (high utilization
// or active shedding) and latency is healthy; multiplicative decrease
// fires only after a sustained run of congested ticks. The hysteresis
// is what keeps the loop from the oscillation failure mode of naive
// reactive controllers (every node slamming between states on a shared
// signal): a single noisy tick moves nothing, and after a cut the
// controller must observe a clear run before probing again, so under
// steady load the budget parks in a narrow band around the knee
// instead of sawtoothing across it.
package qos

import "time"

// Config bounds and paces the controller. Zero values pick the
// defaults noted on each field.
type Config struct {
	// MinBudget and MaxBudget clamp the adaptive admission budget.
	// InitialBudget is the starting point (default: MaxBudget).
	MinBudget     int64
	MaxBudget     int64
	InitialBudget int64

	// Increase is the additive probe step per clear tick (default:
	// MaxBudget/64, at least 1).
	Increase int64
	// Decrease is the multiplicative cut on sustained congestion, in
	// (0, 1) (default 0.9).
	Decrease float64

	// CongestedTicks is how many consecutive congested ticks arm a
	// cut (default 2). ClearTicks is how many consecutive clear ticks
	// re-arm growth after a cut (default 3).
	CongestedTicks int
	ClearTicks     int

	// LatencyRatio is the fast/slow EWMA ratio that reads as latency
	// climbing (default 1.6).
	LatencyRatio float64

	// MinWorkers and MaxWorkers clamp the adaptive worker grant pool
	// (defaults: 1 and the initial pool size the governor reports).
	MinWorkers int
	MaxWorkers int

	// MinRetryAfter and MaxRetryAfter bound the shed backoff hint
	// (defaults: 250ms and 8s).
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBudget <= 0 {
		c.MaxBudget = 1 << 30
	}
	if c.MinBudget <= 0 {
		c.MinBudget = c.MaxBudget / 8
	}
	if c.MinBudget > c.MaxBudget {
		c.MinBudget = c.MaxBudget
	}
	if c.InitialBudget <= 0 {
		c.InitialBudget = c.MaxBudget
	}
	if c.Increase <= 0 {
		c.Increase = c.MaxBudget / 64
		if c.Increase < 1 {
			c.Increase = 1
		}
	}
	if c.Decrease <= 0 || c.Decrease >= 1 {
		c.Decrease = 0.9
	}
	if c.CongestedTicks <= 0 {
		c.CongestedTicks = 2
	}
	if c.ClearTicks <= 0 {
		c.ClearTicks = 3
	}
	if c.LatencyRatio <= 1 {
		c.LatencyRatio = 1.6
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.MinRetryAfter <= 0 {
		c.MinRetryAfter = 250 * time.Millisecond
	}
	if c.MaxRetryAfter < c.MinRetryAfter {
		c.MaxRetryAfter = 8 * time.Second
	}
	return c
}

// Signals is one tick's measurement snapshot, gathered by the caller
// from the governor and the obs taps.
type Signals struct {
	// InflightBytes is the admitted-and-unreleased charge right now.
	InflightBytes int64
	// ShedDelta counts budget/share rejections since the last tick.
	ShedDelta int64
	// BusyWorkers and PoolSize describe the worker token pool.
	BusyWorkers int
	PoolSize    int
	// FastLatency and SlowLatency are the two EWMA reads over request
	// latency, in seconds. Fast well above slow means latency is
	// climbing now; both near zero means no traffic.
	FastLatency float64
	SlowLatency float64
	// QueueDepth is optional queued/coalesced work behind admission
	// (the router's in-flight coalesce depth, zero on szd).
	QueueDepth int
}

// State is the controller's current output, also what /debug/qos and
// the szd_qos_* gauges expose.
type State struct {
	BudgetBytes int64         `json:"budget_bytes"`
	Workers     int           `json:"workers"`
	RetryAfter  time.Duration `json:"-"`
	Congested   bool          `json:"congested"`
	// Ticks, Cuts and Grows count control decisions since boot.
	Ticks int64 `json:"ticks"`
	Cuts  int64 `json:"cuts"`
	Grows int64 `json:"grows"`

	RetryAfterMS int64 `json:"retry_after_ms"`
	// BaselineLatency is the controller's uncongested-latency
	// estimate (seconds): the minimum fast-EWMA read since boot.
	BaselineLatency float64 `json:"baseline_latency_seconds"`
}

// Controller folds Signals into State. Not safe for concurrent use:
// exactly one loop owns it and publishes State to the governor.
type Controller struct {
	cfg   Config
	state State

	baseline    float64
	congStreak  int
	clearStreak int
}

// New returns a controller parked at the configured initial budget
// and the full worker clamp.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg}
	c.state = State{
		BudgetBytes: clamp64(cfg.InitialBudget, cfg.MinBudget, cfg.MaxBudget),
		Workers:     cfg.MaxWorkers,
		RetryAfter:  cfg.MinRetryAfter,
	}
	c.state.RetryAfterMS = c.state.RetryAfter.Milliseconds()
	return c
}

// Config reports the bounds the controller runs under.
func (c *Controller) Config() Config { return c.cfg }

// State returns the last published output.
func (c *Controller) State() State { return c.state }

// congested classifies one tick. Two latency reads feed it: fast
// against the boot-min baseline catches sustained overload (a pure
// fast/slow trend goes blind once both EWMAs meet at the elevated
// level, which would let the budget ratchet up forever), and fast
// against slow catches a climb in progress before the baseline test
// trips. Either one only counts while the budget is at least half
// used — an idle daemon whose workload got inherently slower must not
// cut. A saturated worker pool with queue behind it reads as pressure
// regardless. Shedding alone does not: sheds mean the budget is
// binding, and if latency is still healthy the right move is to grow,
// not to cut (cutting on sheds is the downward spiral).
func (c *Controller) congested(s Signals) bool {
	if s.FastLatency > 0 && (c.baseline == 0 || s.FastLatency < c.baseline) {
		c.baseline = s.FastLatency
	}
	c.state.BaselineLatency = c.baseline
	util := 0.0
	if c.state.BudgetBytes > 0 {
		util = float64(s.InflightBytes) / float64(c.state.BudgetBytes)
	}
	overBaseline := c.baseline > 0 && s.FastLatency > c.cfg.LatencyRatio*c.baseline
	latencyClimbing := s.SlowLatency > 0 && s.FastLatency > c.cfg.LatencyRatio*s.SlowLatency
	workersSaturated := s.PoolSize > 0 && s.BusyWorkers >= s.PoolSize && s.QueueDepth > 0
	return ((overBaseline || latencyClimbing) && util > 0.5) || workersSaturated
}

// Tick folds one measurement snapshot and returns the new State.
func (c *Controller) Tick(s Signals) State {
	cfg := c.cfg
	st := &c.state
	st.Ticks++

	if c.congested(s) {
		c.congStreak++
		c.clearStreak = 0
	} else {
		c.clearStreak++
		c.congStreak = 0
	}

	switch {
	case c.congStreak >= cfg.CongestedTicks:
		// Sustained pressure: multiplicative cut, workers down one,
		// backoff hint doubles. Re-arming growth takes ClearTicks.
		st.Congested = true
		cut := int64(float64(st.BudgetBytes) * cfg.Decrease)
		if cut < st.BudgetBytes {
			st.BudgetBytes = clamp64(cut, cfg.MinBudget, cfg.MaxBudget)
			st.Cuts++
		}
		if st.Workers > cfg.MinWorkers {
			st.Workers--
		}
		st.RetryAfter = clampDur(st.RetryAfter*2, cfg.MinRetryAfter, cfg.MaxRetryAfter)
		c.congStreak = 0

	case c.clearStreak >= cfg.ClearTicks:
		// Sustained health: leave the congested regime, decay the
		// backoff hint, restore a worker, and probe the budget upward
		// — but only if it is binding (high utilization or active
		// sheds). An idle daemon holds instead of railing to max just
		// to fall off a cliff when load returns.
		st.Congested = false
		st.RetryAfter = clampDur(st.RetryAfter/2, cfg.MinRetryAfter, cfg.MaxRetryAfter)
		if st.Workers < cfg.MaxWorkers {
			st.Workers++
		}
		util := float64(s.InflightBytes) / float64(st.BudgetBytes)
		if (util > 0.7 || s.ShedDelta > 0) && st.BudgetBytes < cfg.MaxBudget {
			st.BudgetBytes = clamp64(st.BudgetBytes+cfg.Increase, cfg.MinBudget, cfg.MaxBudget)
			st.Grows++
		}
		// Keep clearStreak saturated at the threshold so continued
		// health keeps probing every tick instead of every ClearTicks.
		c.clearStreak = cfg.ClearTicks
	}

	st.RetryAfterMS = st.RetryAfter.Milliseconds()
	return *st
}

func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampDur(v, lo, hi time.Duration) time.Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
