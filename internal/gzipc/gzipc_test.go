package gzipc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
)

func TestRoundTripFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := grid.New(20, 30)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	c, err := Compress(a, grid.Float64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompress(c, grid.Float64, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("gzip round trip must be lossless")
	}
}

func TestRoundTripFloat32(t *testing.T) {
	a := grid.New(50)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Sin(float64(i))))
	}
	c, err := Compress(a, grid.Float32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompress(c, grid.Float32, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("float32 round trip mismatch")
	}
}

func TestCompressesRepetitiveData(t *testing.T) {
	a := grid.New(100, 100)
	c, err := Compress(a, grid.Float64) // all zeros
	if err != nil {
		t.Fatal(err)
	}
	if len(c) > a.Len() { // should be far below 8 bytes/value
		t.Fatalf("zero field compressed to %d bytes", len(c))
	}
}

func TestRandomDataBarelyCompresses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := grid.New(64, 64)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	c, err := Compress(a, grid.Float64)
	if err != nil {
		t.Fatal(err)
	}
	cf := float64(a.Len()*8) / float64(len(c))
	if cf > 1.5 {
		t.Fatalf("random mantissas should not compress: CF=%v", cf)
	}
}

func TestDecompressBadInput(t *testing.T) {
	if _, err := Decompress([]byte("not gzip"), grid.Float64, 4); err == nil {
		t.Fatal("garbage accepted")
	}
	a := grid.New(10)
	c, _ := Compress(a, grid.Float64)
	if _, err := Decompress(c, grid.Float64, 100); err == nil {
		t.Fatal("wrong dims accepted")
	}
}
