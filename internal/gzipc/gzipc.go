// Package gzipc is the GZIP baseline of the paper's evaluation (Section V):
// lossless DEFLATE compression of the raw little-endian float bytes, exactly
// what `gzip` applied to a scientific data file does.
package gzipc

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"

	"repro/internal/grid"
)

// Compress serializes a as raw little-endian values of type t and
// gzip-compresses the bytes at the default compression level.
func Compress(a *grid.Array, t grid.DType) ([]byte, error) {
	var raw bytes.Buffer
	raw.Grow(a.Len() * t.Size())
	if err := a.WriteRaw(&raw, t); err != nil {
		return nil, fmt.Errorf("gzipc: serializing: %w", err)
	}
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if _, err := zw.Write(raw.Bytes()); err != nil {
		return nil, fmt.Errorf("gzipc: compressing: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("gzipc: flushing: %w", err)
	}
	return out.Bytes(), nil
}

// Decompress inverts Compress. The element type and dimensions are not
// stored in the gzip stream (matching how raw scientific files carry no
// metadata), so the caller supplies them.
func Decompress(data []byte, t grid.DType, dims ...int) (*grid.Array, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("gzipc: opening stream: %w", err)
	}
	defer zr.Close()
	a, err := grid.ReadRaw(zr, t, dims...)
	if err != nil {
		return nil, fmt.Errorf("gzipc: reading values: %w", err)
	}
	// Drain to EOF so the DEFLATE stream's end and the gzip trailer
	// (CRC32 + length) are actually verified; without this a stream
	// truncated after the last value decodes silently.
	if _, err := io.Copy(io.Discard, zr); err != nil {
		return nil, fmt.Errorf("gzipc: verifying stream trailer: %w", err)
	}
	return a, nil
}
