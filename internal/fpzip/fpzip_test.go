package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
)

func TestOrderedMapMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1, -1e-300, 0, 1e-300, 1, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if orderedFromFloat(vals[i-1]) >= orderedFromFloat(vals[i]) {
			t.Fatalf("ordering broken between %g and %g", vals[i-1], vals[i])
		}
	}
	for _, v := range vals {
		if floatFromOrdered(orderedFromFloat(v)) != v {
			t.Fatalf("ordered map not invertible at %g", v)
		}
	}
}

func TestOrderedMap32(t *testing.T) {
	vals := []float32{-1e30, -1, 0, 1, 1e30}
	for i := 1; i < len(vals); i++ {
		if orderedFromFloat32(vals[i-1]) >= orderedFromFloat32(vals[i]) {
			t.Fatalf("32-bit ordering broken")
		}
	}
	for _, v := range vals {
		if float32FromOrdered(orderedFromFloat32(v)) != v {
			t.Fatalf("32-bit map not invertible at %g", v)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, math.MaxInt64, math.MinInt64} {
		if unzigzag64(zigzag64(v)) != v {
			t.Fatalf("zigzag broken at %d", v)
		}
	}
}

func TestLossless2D(t *testing.T) {
	a := grid.New(32, 40)
	for i := 0; i < 32; i++ {
		for j := 0; j < 40; j++ {
			a.Set(math.Sin(float64(i)*0.2)*math.Cos(float64(j)*0.3), i, j)
		}
	}
	c, err := Compress(a, grid.Float64)
	if err != nil {
		t.Fatal(err)
	}
	b, dt, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if dt != grid.Float64 {
		t.Fatalf("dtype %v", dt)
	}
	if !a.Equal(b) {
		t.Fatal("fpzip must be lossless")
	}
}

func TestLosslessFloat32(t *testing.T) {
	a := grid.New(25, 25)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Exp(math.Sin(float64(i) * 0.01))))
	}
	c, err := Compress(a, grid.Float32)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("float32 mode must be lossless for float32 data")
	}
}

func TestSmoothDataCompresses(t *testing.T) {
	// FPZIP's claim to fame: smooth float32 fields compress losslessly with
	// CF > 1. Verify we beat 1.3 on a very smooth field.
	a := grid.New(64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			a.Set(float64(float32(math.Sin(float64(i)*0.05)+math.Cos(float64(j)*0.05))), i, j)
		}
	}
	c, err := Compress(a, grid.Float32)
	if err != nil {
		t.Fatal(err)
	}
	cf := float64(a.Len()*4) / float64(len(c))
	if cf < 1.3 {
		t.Fatalf("smooth float32 CF = %v, want > 1.3", cf)
	}
}

func TestSpecialValues(t *testing.T) {
	a := grid.New(10)
	copy(a.Data, []float64{0, math.Inf(1), math.Inf(-1), -0.0, 1e-308, -1e308, 1, -1, math.Pi, 2})
	c, err := Compress(a, grid.Float64)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Float64bits(a.Data[i]) != math.Float64bits(b.Data[i]) {
			t.Fatalf("value %d not bit-exact: %g vs %g", i, a.Data[i], b.Data[i])
		}
	}
}

func TestLosslessQuick(t *testing.T) {
	f := func(seed int64, d uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var a *grid.Array
		switch d % 3 {
		case 0:
			a = grid.New(rng.Intn(100) + 1)
		case 1:
			a = grid.New(rng.Intn(12)+1, rng.Intn(12)+1)
		default:
			a = grid.New(rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1)
		}
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(12)-6))
		}
		c, err := Compress(a, grid.Float64)
		if err != nil {
			return false
		}
		b, _, err := Decompress(c)
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruption(t *testing.T) {
	a := grid.New(16, 16)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	c, _ := Compress(a, grid.Float64)
	bad := append([]byte(nil), c...)
	bad[len(bad)/2] ^= 1
	if _, _, err := Decompress(bad); err == nil {
		t.Fatal("corruption undetected")
	}
	if _, _, err := Decompress(c[:8]); err == nil {
		t.Fatal("truncation undetected")
	}
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestBadDType(t *testing.T) {
	a := grid.New(4)
	if _, err := Compress(a, grid.DType(9)); err == nil {
		t.Fatal("bad dtype accepted")
	}
}
