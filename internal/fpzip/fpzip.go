// Package fpzip reimplements the predictive lossless floating-point
// compression scheme of Lindstrom & Isenburg's FPZIP (TVCG 2006), the
// lossless baseline of the paper's evaluation.
//
// Like FPZIP, the coder predicts each value with the Lorenzo predictor,
// maps prediction and actual value to sign-magnitude-ordered integers so
// that numerically close floats have close integer images, and entropy-
// codes the residuals. FPZIP uses a range coder over residual "bucket"
// symbols followed by raw mantissa bits; this implementation uses a
// canonical Huffman code over the residual bit-length bucket (an
// equivalent-style two-part code) to stay within the Go standard library.
// Compression is exactly lossless: Decompress reproduces the input
// bit-for-bit.
package fpzip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/bitstream"
	"repro/internal/grid"
	"repro/internal/huffman"
	"repro/internal/predictor"
)

const magic = "FPZG"

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("fpzip: corrupt stream")

// orderedFromFloat maps a float64 to a uint64 such that the integer order
// matches the total order of the floats (sign-magnitude to biased).
func orderedFromFloat(v float64) uint64 {
	b := math.Float64bits(v)
	if b>>63 != 0 {
		return ^b
	}
	return b | (1 << 63)
}

// floatFromOrdered inverts orderedFromFloat.
func floatFromOrdered(u uint64) float64 {
	if u>>63 != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// orderedFromFloat32 / float32FromOrdered are the 32-bit variants used when
// the source data is single precision: residuals then span ≤ 33 bits, which
// is what gives FPZIP its edge on float32 data.
func orderedFromFloat32(v float32) uint32 {
	b := math.Float32bits(v)
	if b>>31 != 0 {
		return ^b
	}
	return b | (1 << 31)
}

func float32FromOrdered(u uint32) float32 {
	if u>>31 != 0 {
		return math.Float32frombits(u &^ (1 << 31))
	}
	return math.Float32frombits(^u)
}

// Compress losslessly encodes a. When t is grid.Float32 the data must be
// float32-representable (e.g. loaded via grid.FromFloat32s); each value is
// then coded in the 32-bit integer domain.
func Compress(a *grid.Array, t grid.DType) ([]byte, error) {
	if t != grid.Float32 && t != grid.Float64 {
		return nil, fmt.Errorf("fpzip: unsupported dtype %v", t)
	}
	pred, err := predictor.New(a.Dims, 1) // Lorenzo, as in FPZIP
	if err != nil {
		return nil, err
	}
	n := a.Len()

	// Pass 1: compute residual buckets for the Huffman table. The residual
	// is the zig-zag of (ordered(actual) − ordered(predicted)); its bucket
	// is its bit length (0..64), giving a 65-symbol alphabet.
	residuals := make([]uint64, n)
	buckets := make([]int, n)
	coord := make([]int, a.NDims())
	for idx := 0; idx < n; idx++ {
		pv := pred.Predict(a.Data, idx, coord)
		var r uint64
		if t == grid.Float32 {
			av := orderedFromFloat32(float32(a.Data[idx]))
			p32 := orderedFromFloat32(float32(pv))
			r = zigzag64(int64(int32(av - p32)))
		} else {
			av := orderedFromFloat(a.Data[idx])
			p64 := orderedFromFloat(pv)
			r = zigzag64(int64(av - p64))
		}
		residuals[idx] = r
		buckets[idx] = bitLen(r)
		advanceCoord(coord, a.Dims)
	}
	freqs, err := huffman.CountFrequencies(buckets, 65)
	if err != nil {
		return nil, err
	}
	cb, err := huffman.New(freqs)
	if err != nil {
		return nil, err
	}

	w := bitstream.NewWriter(n * 2)
	cb.Serialize(w)
	for idx := 0; idx < n; idx++ {
		b := buckets[idx]
		if err := cb.EncodeSymbol(w, b); err != nil {
			return nil, err
		}
		if b > 1 {
			// The top bit of a b-bit value is implicitly 1; store b−1 bits.
			w.WriteBits(residuals[idx], uint(b-1))
		}
	}

	head := make([]byte, 0, 32)
	head = append(head, magic...)
	head = append(head, byte(t), byte(len(a.Dims)))
	for _, d := range a.Dims {
		head = binary.AppendUvarint(head, uint64(d))
	}
	payload := w.Bytes()
	head = binary.AppendUvarint(head, w.Len())
	out := append(head, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(out))
	return out, nil
}

// Decompress inverts Compress.
func Decompress(data []byte) (*grid.Array, grid.DType, error) {
	if len(data) < len(magic)+2+4 {
		return nil, 0, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	if string(data[:4]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(data[:len(data)-4]) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	t := grid.DType(data[4])
	if t != grid.Float32 && t != grid.Float64 {
		return nil, 0, fmt.Errorf("%w: bad dtype", ErrCorrupt)
	}
	nd := int(data[5])
	if nd < 1 || nd > grid.MaxDims {
		return nil, 0, fmt.Errorf("%w: bad ndims", ErrCorrupt)
	}
	off := 6
	dims := make([]int, nd)
	for i := range dims {
		v, k := binary.Uvarint(data[off:])
		if k <= 0 || v == 0 || v > 1<<40 {
			return nil, 0, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		dims[i] = int(v)
		off += k
	}
	nbits, k := binary.Uvarint(data[off:])
	if k <= 0 {
		return nil, 0, fmt.Errorf("%w: bad payload length", ErrCorrupt)
	}
	off += k
	payload := data[off : len(data)-4]

	r := bitstream.NewReaderBits(payload, nbits)
	cb, err := huffman.Deserialize(r)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: codebook: %v", ErrCorrupt, err)
	}
	a := grid.New(dims...)
	pred, err := predictor.New(dims, 1)
	if err != nil {
		return nil, 0, err
	}
	coord := make([]int, nd)
	for idx := 0; idx < a.Len(); idx++ {
		b, err := cb.DecodeSymbol(r)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: bucket %d: %v", ErrCorrupt, idx, err)
		}
		var res uint64
		switch {
		case b == 0:
			res = 0
		case b == 1:
			res = 1
		default:
			low, err := r.ReadBits(uint(b - 1))
			if err != nil {
				return nil, 0, fmt.Errorf("%w: residual %d: %v", ErrCorrupt, idx, err)
			}
			res = (uint64(1) << (b - 1)) | low
		}
		pv := pred.Predict(a.Data, idx, coord)
		if t == grid.Float32 {
			p32 := orderedFromFloat32(float32(pv))
			av := p32 + uint32(unzigzag64(res))
			a.Data[idx] = float64(float32FromOrdered(av))
		} else {
			p64 := orderedFromFloat(pv)
			av := p64 + uint64(unzigzag64(res))
			a.Data[idx] = floatFromOrdered(av)
		}
		advanceCoord(coord, dims)
	}
	return a, t, nil
}

func zigzag64(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag64(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

func bitLen(v uint64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func advanceCoord(coord, dims []int) {
	for j := len(coord) - 1; j >= 0; j-- {
		coord[j]++
		if coord[j] < dims[j] {
			return
		}
		coord[j] = 0
	}
}
