package chaos

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newEcho(t *testing.T) *httptest.Server {
	t.Helper()
	// 1 KiB stays under the server's chunking threshold, so the
	// response carries a Content-Length for the truncator to halve.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1024))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestResetSurfacesAsNetError(t *testing.T) {
	ts := newEcho(t)
	rt := NewRoundTripper(nil, Config{Seed: 1, Reset: 1})
	hc := &http.Client{Transport: rt}
	_, err := hc.Get(ts.URL)
	if err == nil {
		t.Fatal("reset fault did not fail the request")
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("want a non-timeout net.Error, got %v", err)
	}
	if got := rt.Injected(); got.Resets != 1 || got.Total() != 1 {
		t.Fatalf("counts %+v", got)
	}
}

func TestErr5xxSynthesized(t *testing.T) {
	// Base transport is never reached: point it at a dead URL.
	rt := NewRoundTripper(nil, Config{Seed: 1, Err5xx: 1})
	hc := &http.Client{Transport: rt}
	resp, err := hc.Get("http://127.0.0.1:1/unreachable")
	if err != nil {
		t.Fatalf("5xx fault must answer, not error: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if got := rt.Injected(); got.Err5xx != 1 {
		t.Fatalf("counts %+v", got)
	}
}

func TestTruncateTearsBody(t *testing.T) {
	ts := newEcho(t)
	rt := NewRoundTripper(nil, Config{Seed: 1, Truncate: 1})
	hc := &http.Client{Transport: rt}
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v (read %d bytes)", err, len(body))
	}
	if len(body) >= 1024 {
		t.Fatalf("read the full body (%d bytes) despite truncation", len(body))
	}
}

func TestLatencyDelays(t *testing.T) {
	ts := newEcho(t)
	rt := NewRoundTripper(nil, Config{Seed: 1, Latency: 1, LatencyDur: 80 * time.Millisecond})
	hc := &http.Client{Transport: rt}
	t0 := time.Now()
	resp, err := hc.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("latency fault did not delay: %v", d)
	}
}

func TestMatchScopesFaults(t *testing.T) {
	ts := newEcho(t)
	rt := NewRoundTripper(nil, Config{
		Seed:  1,
		Reset: 1,
		Match: func(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/target") },
	})
	hc := &http.Client{Transport: rt}
	resp, err := hc.Get(ts.URL + "/other")
	if err != nil {
		t.Fatalf("non-matching request was faulted: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, err := hc.Get(ts.URL + "/target"); err == nil {
		t.Fatal("matching request escaped the fault")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed must produce the same fault schedule.
	schedule := func(seed int64) []bool {
		rt := NewRoundTripper(nil, Config{Seed: seed, Reset: 0.5})
		out := make([]bool, 64)
		for i := range out {
			r, _, _, _ := rt.roll()
			out[i] = r
		}
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestWrapListenerResets(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := WrapListener(ln, 1, 7) // every connection reset
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})}
	go srv.Serve(cl)
	defer srv.Close()

	hc := &http.Client{Timeout: 2 * time.Second}
	if resp, err := hc.Get("http://" + ln.Addr().String()); err == nil {
		resp.Body.Close()
		t.Fatal("listener with reset prob 1 answered a request")
	}
	if cl.Resets() == 0 {
		t.Fatal("no resets counted")
	}
}
