// Package chaos injects transport-level faults for fleet testing:
// connection resets, latency spikes, truncated response bodies, and
// 5xx bursts, each fired with a configured probability from a seeded
// PRNG so a failing run replays exactly. The two entry points wrap
// the two places faults can live — NewRoundTripper corrupts a
// client's view of the network (the router's view of its backends in
// the fleet tests), WrapListener corrupts a server's accept path.
//
// The faults are deliberately the ones a fault-tolerant fleet must
// absorb: a reset before any response byte is indistinguishable from
// a dead backend and must trigger failover, not an error; a truncated
// body is a torn read the digest layer must catch; a 5xx burst is a
// crashing process the health poller must route around. Faults are
// counted per kind so tests can assert the run actually exercised the
// machinery ("zero failures" is vacuous if zero faults fired).
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrInjectedReset is the error a reset fault surfaces. It satisfies
// net.Error (temporary, not timeout) so retry layers classify it like
// a real ECONNRESET.
var ErrInjectedReset = &resetError{}

type resetError struct{}

func (*resetError) Error() string   { return "chaos: injected connection reset" }
func (*resetError) Timeout() bool   { return false }
func (*resetError) Temporary() bool { return true }

var _ net.Error = (*resetError)(nil)

// Config sets the per-request fault probabilities (each in [0, 1],
// independently evaluated; at most one fault fires per request, tried
// in the order reset, 5xx, latency, truncate).
type Config struct {
	Seed int64 // PRNG seed; the same seed replays the same fault schedule

	Reset      float64       // fail before any response bytes (connection reset)
	Err5xx     float64       // synthesize a 502 with no upstream work
	Latency    float64       // delay the response by LatencyDur
	LatencyDur time.Duration // spike size; 0 = 50ms
	Truncate   float64       // cut the response body at half its length

	// Match limits injection to matching requests (nil = every request).
	// Use it to aim faults at one backend or one path.
	Match func(*http.Request) bool
}

// Counts is a snapshot of fired faults by kind.
type Counts struct {
	Resets    int64
	Err5xx    int64
	Latencies int64
	Truncates int64
}

// Total is the number of faults fired across all kinds.
func (c Counts) Total() int64 { return c.Resets + c.Err5xx + c.Latencies + c.Truncates }

// RoundTripper injects faults into an http.RoundTripper chain.
type RoundTripper struct {
	base http.RoundTripper
	cfg  Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts Counts
}

// NewRoundTripper wraps base (nil = http.DefaultTransport) with fault
// injection per cfg.
func NewRoundTripper(base http.RoundTripper, cfg Config) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.LatencyDur <= 0 {
		cfg.LatencyDur = 50 * time.Millisecond
	}
	return &RoundTripper{base: base, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Injected returns the faults fired so far.
func (t *RoundTripper) Injected() Counts {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts
}

// roll draws the fault decision for one request under the mutex, so
// concurrent requests see a deterministic (if interleaving-dependent)
// schedule and the rng is never raced.
func (t *RoundTripper) roll() (reset, e5xx, latency, truncate bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case t.rng.Float64() < t.cfg.Reset:
		t.counts.Resets++
		return true, false, false, false
	case t.rng.Float64() < t.cfg.Err5xx:
		t.counts.Err5xx++
		return false, true, false, false
	case t.rng.Float64() < t.cfg.Latency:
		t.counts.Latencies++
		return false, false, true, false
	case t.rng.Float64() < t.cfg.Truncate:
		t.counts.Truncates++
		return false, false, false, true
	}
	return
}

func (t *RoundTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	if t.cfg.Match != nil && !t.cfg.Match(r) {
		return t.base.RoundTrip(r)
	}
	reset, e5xx, latency, truncate := t.roll()
	switch {
	case reset:
		// Before any upstream work: the caller sees a connection-level
		// failure with no response, exactly like a SIGKILLed peer. The
		// request body is closed so callers' replay accounting stays sane.
		if r.Body != nil {
			r.Body.Close()
		}
		return nil, fmt.Errorf("chaos: %s %s: %w", r.Method, r.URL.Path, ErrInjectedReset)
	case e5xx:
		if r.Body != nil {
			io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
		return &http.Response{
			Status:     "502 Bad Gateway",
			StatusCode: http.StatusBadGateway,
			Proto:      r.Proto, ProtoMajor: r.ProtoMajor, ProtoMinor: r.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("chaos: injected 502")),
			Request: r,
		}, nil
	case latency:
		timer := time.NewTimer(t.cfg.LatencyDur)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			if r.Body != nil {
				r.Body.Close()
			}
			return nil, r.Context().Err()
		}
		return t.base.RoundTrip(r)
	case truncate:
		resp, err := t.base.RoundTrip(r)
		if err != nil || resp.Body == nil {
			return resp, err
		}
		n := resp.ContentLength
		if n <= 0 {
			n = 64 << 10 // unknown length: cut somewhere plausible
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: n / 2}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.base.RoundTrip(r)
}

// truncatedBody yields the first half of a response body, then fails
// the way a torn connection does.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == nil && b.remaining <= 0 {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// Listener wraps a net.Listener, resetting a fraction of accepted
// connections before the server reads a byte — the server-side twin of
// the RoundTripper's Reset fault.
type Listener struct {
	net.Listener
	prob float64

	mu     sync.Mutex
	rng    *rand.Rand
	resets int64
}

// WrapListener resets accepted connections with probability prob,
// drawn from a PRNG seeded with seed.
func WrapListener(ln net.Listener, prob float64, seed int64) *Listener {
	return &Listener{Listener: ln, prob: prob, rng: rand.New(rand.NewSource(seed))}
}

// Resets returns how many accepted connections were dropped.
func (l *Listener) Resets() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.resets
}

func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		drop := l.rng.Float64() < l.prob
		if drop {
			l.resets++
		}
		l.mu.Unlock()
		if !drop {
			return c, nil
		}
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetLinger(0) // RST, not FIN: a crash, not a close
		}
		c.Close()
	}
}
