package sz_test

// One benchmark per table and figure of the paper's evaluation, wrapping
// the drivers in internal/experiments, plus compression-throughput
// micro-benchmarks (Table VI's real content). Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benches print their report once (first iteration) so a
// bench run doubles as a compact reproduction log; cmd/szexp produces the
// full reports.

import (
	"fmt"
	"sync"
	"testing"

	sz "repro"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/grid"
)

// benchCfg keeps per-iteration work modest: ATM 112×225, APS 160×160,
// Hurricane 8×31×31.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 16, Seed: 20170529}
}

var reportOnce sync.Map

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(name, benchCfg())
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if _, done := reportOnce.LoadOrStore(name, true); !done {
			b.Logf("\n%s", res)
		}
	}
}

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4a(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B)  { benchExperiment(b, "fig4b") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkTables78(b *testing.B) {
	// The scaling study runs multi-worker measurements internally; a single
	// iteration is already a complete study.
	benchExperiment(b, "tables7-8")
}
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// --- throughput micro-benchmarks (Table VI's substance) ----------------------

func benchData(set string) *sz.Array {
	switch set {
	case "ATM":
		return datagen.ATM(225, 450, 1)
	case "APS":
		return datagen.APS(320, 320, 2)
	default:
		return datagen.Hurricane(12, 62, 62, 3)
	}
}

func BenchmarkCompress(b *testing.B) {
	for _, set := range []string{"ATM", "APS", "Hurricane"} {
		for _, rel := range []float64{1e-3, 1e-4, 1e-5, 1e-6} {
			a := benchData(set)
			p := sz.Params{Mode: sz.BoundRel, RelBound: rel, OutputType: grid.Float32}
			b.Run(fmt.Sprintf("%s/eb=%.0e", set, rel), func(b *testing.B) {
				b.SetBytes(int64(a.Len() * 4))
				for i := 0; i < b.N; i++ {
					if _, _, err := sz.Compress(a, p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	for _, set := range []string{"ATM", "APS", "Hurricane"} {
		for _, rel := range []float64{1e-3, 1e-4, 1e-5, 1e-6} {
			a := benchData(set)
			stream, _, err := sz.Compress(a, sz.Params{Mode: sz.BoundRel, RelBound: rel, OutputType: grid.Float32})
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/eb=%.0e", set, rel), func(b *testing.B) {
				b.SetBytes(int64(a.Len() * 4))
				for i := 0; i < b.N; i++ {
					if _, _, err := sz.Decompress(stream); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkLayersAblation measures the cost/benefit of the layer count
// (the design choice Table II analyzes): throughput and CF per n.
func BenchmarkLayersAblation(b *testing.B) {
	a := datagen.ATM(225, 450, 4)
	for n := 1; n <= 4; n++ {
		p := sz.Params{Mode: sz.BoundRel, RelBound: 1e-4, Layers: n, OutputType: grid.Float32}
		b.Run(fmt.Sprintf("layers=%d", n), func(b *testing.B) {
			b.SetBytes(int64(a.Len() * 4))
			var cf float64
			for i := 0; i < b.N; i++ {
				_, st, err := sz.Compress(a, p)
				if err != nil {
					b.Fatal(err)
				}
				cf = st.CompressionFactor
			}
			b.ReportMetric(cf, "CF")
		})
	}
}

// BenchmarkIntervalAblation measures the adaptive-interval design choice
// (Section IV-B): CF as a function of m at a fixed bound.
func BenchmarkIntervalAblation(b *testing.B) {
	a := datagen.ATM(225, 450, 5)
	for _, m := range []int{4, 6, 8, 10, 12, 16} {
		p := sz.Params{Mode: sz.BoundRel, RelBound: 1e-5, IntervalBits: m, OutputType: grid.Float32}
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			b.SetBytes(int64(a.Len() * 4))
			var cf, hit float64
			for i := 0; i < b.N; i++ {
				_, st, err := sz.Compress(a, p)
				if err != nil {
					b.Fatal(err)
				}
				cf, hit = st.CompressionFactor, st.HitRate
			}
			b.ReportMetric(cf, "CF")
			b.ReportMetric(hit*100, "hit%")
		})
	}
}

func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablations") }

// BenchmarkPointwiseRel measures the pointwise-relative extension against
// the plain range-relative mode on huge-dynamic-range data.
func BenchmarkPointwiseRel(b *testing.B) {
	a := datagen.ATMVariant("CDNUMC", 225, 450, 6)
	b.Run("pwrel", func(b *testing.B) {
		b.SetBytes(int64(a.Len() * 8))
		var cf float64
		for i := 0; i < b.N; i++ {
			_, st, err := sz.CompressPointwiseRel(a, sz.PointwiseParams{RelBound: 1e-3})
			if err != nil {
				b.Fatal(err)
			}
			cf = st.CompressionFactor
		}
		b.ReportMetric(cf, "CF")
	})
	b.Run("rangerel", func(b *testing.B) {
		b.SetBytes(int64(a.Len() * 8))
		var cf float64
		for i := 0; i < b.N; i++ {
			_, st, err := sz.Compress(a, sz.Params{Mode: sz.BoundRel, RelBound: 1e-3})
			if err != nil {
				b.Fatal(err)
			}
			cf = st.CompressionFactor
		}
		b.ReportMetric(cf, "CF")
	})
}

// BenchmarkBlocked measures the blocked container against single-stream
// compression (parallelism/random access vs compression-factor penalty).
func BenchmarkBlocked(b *testing.B) {
	a := datagen.ATM(225, 450, 7)
	cp := sz.Params{Mode: sz.BoundRel, RelBound: 1e-4, OutputType: grid.Float32}
	b.Run("single", func(b *testing.B) {
		b.SetBytes(int64(a.Len() * 4))
		for i := 0; i < b.N; i++ {
			if _, _, err := sz.Compress(a, cp); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked", func(b *testing.B) {
		b.SetBytes(int64(a.Len() * 4))
		for i := 0; i < b.N; i++ {
			if _, _, err := sz.CompressBlocked(a, sz.BlockedParams{Core: cp, SlabRows: 32}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
