// Command szrouter fronts a fleet of szd daemons: it spreads
// /v1/compress, /v1/decompress, /v1/inspect, and the slab range
// endpoints across the backends by consistent hashing on stream
// identity, fails over to the next ring node when a backend sheds
// (429), drains (503), or is unreachable, and balances unbounded
// streams onto the least-loaded healthy node.
//
//	szrouter -addr :7070 -backends host1:7071,host2:7071,host3:7071
//
// Clients need no changes: `sz -remote <router>` and the Go client work
// against the router exactly as against a single daemon; backend
// rejections (including Retry-After) are relayed unchanged when the
// whole fleet is saturated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr        = flag.String("addr", ":7070", "listen address")
		backends    = flag.String("backends", "", "comma-separated szd backends (host:port or URLs); required")
		poll        = flag.Duration("poll", 2*time.Second, "health-poll interval")
		replicas    = flag.Int("replicas", 0, "consistent-hash vnodes per backend (0 = 128)")
		bufferLimit = flag.Int("buffer-limit", 0, "replayable-body cap in bytes (0 = 4 MiB)")
	)
	flag.Parse()
	if err := run(*addr, *backends, *poll, *replicas, *bufferLimit); err != nil {
		fmt.Fprintln(os.Stderr, "szrouter:", err)
		os.Exit(1)
	}
}

func run(addr, backends string, poll time.Duration, replicas, bufferLimit int) error {
	var nodes []string
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			nodes = append(nodes, b)
		}
	}
	rt, err := fleet.New(fleet.Config{
		Backends:     nodes,
		Replicas:     replicas,
		BufferLimit:  bufferLimit,
		PollInterval: poll,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Stop()

	hs := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          log.New(os.Stderr, "szrouter: ", log.LstdFlags),
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("szrouter: listening on %s, backends %v", addr, nodes)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("szrouter: %v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown incomplete: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("szrouter: drained cleanly")
		return nil
	}
}
