// Command szrouter fronts a fleet of szd daemons: it spreads
// /v1/compress, /v1/decompress, /v1/inspect, and the slab range
// endpoints across the backends by consistent hashing on stream
// identity, fails over to the next ring node when a backend sheds
// (429), drains (503), or is unreachable, and balances unbounded
// streams onto the least-loaded healthy node.
//
//	szrouter -addr :7070 -backends host1:7071,host2:7071,host3:7071
//
// Clients need no changes: `sz -remote <router>` and the Go client work
// against the router exactly as against a single daemon; backend
// rejections (including Retry-After) are relayed unchanged when the
// whole fleet is saturated. Tenant identity resolves at this edge: the
// X-Sz-Api-Key header is validated and mapped to its tenant before any
// backend work (malformed keys are 400 bad_tenant envelopes here),
// inbound X-Sz-Tenant spoofs are stripped, per-tenant request counts
// are exported as szrouter_tenant_requests_total, and GET /v1/limits
// aggregates the fleet's live QoS state across the backends. The full
// wire contract lives in internal/api and API.md.
//
// Fleet robustness:
//
//   - -membership-file names a watched backend list (one address per
//     line, '#' comments); edits apply live — on SIGHUP or the mtime
//     poll — through the add → warm-up → in-ring and drain-then-remove
//     lifecycles. -backends is then only the seed used when the file
//     does not exist yet.
//   - -replication R copies every validated container to its digest's
//     ring owner and R-1 successors, and digest reads fail over from
//     the owner through the replicas, so any single backend can die
//     without data loss. An anti-entropy sweep re-replicates after
//     membership changes.
//   - -tls-cert/-tls-key/-tls-client-ca serve the client-facing
//     listener over TLS (optionally mTLS); -backend-ca/-backend-cert/
//     -backend-key dial the backends over TLS with a client
//     certificate (backend addresses must then be https:// URLs).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/membership"
	"repro/internal/tlsconf"
)

// options carries the parsed flags into run.
type options struct {
	addr           string
	backends       string
	membershipFile string
	memberPoll     time.Duration
	poll           time.Duration
	replicas       int
	replication    int
	drainGrace     time.Duration
	antiEntropy    time.Duration
	bufferLimit    int
	cacheBytes     int64
	cacheEntry     int64
	slowMS         int64
	traceRing      int

	tlsCert, tlsKey, tlsClientCA       string
	backendCA, backendCert, backendKey string
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":7070", "listen address")
	flag.StringVar(&o.backends, "backends", "", "comma-separated szd backends (host:port or URLs); required unless -membership-file exists")
	flag.StringVar(&o.membershipFile, "membership-file", "", "watched backend list (one address per line, '#' comments); edits apply live on SIGHUP or the poll; empty = static -backends")
	flag.DurationVar(&o.memberPoll, "membership-poll", 2*time.Second, "membership-file mtime poll cadence (<= 0 disables polling; SIGHUP still reloads)")
	flag.DurationVar(&o.poll, "poll", 2*time.Second, "health-poll interval")
	flag.IntVar(&o.replicas, "replicas", 0, "consistent-hash vnodes per backend (0 = 128)")
	flag.IntVar(&o.replication, "replication", 1, "container replication factor R: ring owner plus R-1 successors hold every validated container (1 = owner only)")
	flag.DurationVar(&o.drainGrace, "drain-grace", 0, "how long a removed backend lingers as a drain/repair source (0 = 10s)")
	flag.DurationVar(&o.antiEntropy, "anti-entropy", 0, "periodic anti-entropy sweep cadence (0 = sweep only on membership changes, < 0 disables)")
	flag.IntVar(&o.bufferLimit, "buffer-limit", 0, "replayable-body cap in bytes (0 = 4 MiB)")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 0, "response-cache budget for decode endpoints (0 = 64 MiB, -1 disables cache and coalescing)")
	flag.Int64Var(&o.cacheEntry, "cache-entry-bytes", 0, "largest cacheable single response (0 = 16 MiB)")
	flag.Int64Var(&o.slowMS, "slow-ms", 0, "log requests slower than this many milliseconds with their stage breakdown (0 = disabled)")
	flag.IntVar(&o.traceRing, "trace-ring", 0, "finished traces retained for /debug/traces (0 = 256)")
	flag.StringVar(&o.tlsCert, "tls-cert", "", "serve TLS with this PEM certificate (requires -tls-key)")
	flag.StringVar(&o.tlsKey, "tls-key", "", "PEM private key for -tls-cert")
	flag.StringVar(&o.tlsClientCA, "tls-client-ca", "", "require and verify client certificates signed by this PEM CA (mTLS); empty = no client certs")
	flag.StringVar(&o.backendCA, "backend-ca", "", "PEM CA anchoring backend server verification; setting any -backend-* flag dials backends over TLS")
	flag.StringVar(&o.backendCert, "backend-cert", "", "PEM client certificate presented to mTLS backends (requires -backend-key)")
	flag.StringVar(&o.backendKey, "backend-key", "", "PEM private key for -backend-cert")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = disabled")
	flag.Parse()
	servePprof(*pprofAddr)
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "szrouter:", err)
		os.Exit(1)
	}
}

// servePprof exposes the pprof handlers on their own listener when
// enabled; the routing mux serves only the in-memory trace ring at
// /debug/traces, never the pprof handlers.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("szrouter: pprof listening on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("szrouter: pprof server: %v", err)
		}
	}()
}

// backendClient builds the proxy HTTP client: plain when no -backend-*
// flag is set, TLS (with an optional client certificate for mTLS
// backends) otherwise.
func backendClient(o options) (*http.Client, error) {
	if o.backendCA == "" && o.backendCert == "" && o.backendKey == "" {
		return &http.Client{}, nil
	}
	cfg, err := tlsconf.Client(o.backendCA, o.backendCert, o.backendKey, "")
	if err != nil {
		return nil, err
	}
	return &http.Client{Transport: &http.Transport{TLSClientConfig: cfg}}, nil
}

func run(o options) error {
	// Membership edits flow file -> watcher -> router. The watcher fires
	// only on real set changes; a bad edit (empty file, duplicates) is
	// logged and the previous membership keeps serving. rt is assigned
	// before the watcher starts, so the nil check only covers the
	// construction window.
	var rt *fleet.Router
	watcher, err := membership.NewWatcher(membership.Config{
		Path:     o.membershipFile,
		Seed:     membership.ParseList(o.backends),
		Interval: o.memberPoll,
		OnChange: func(nodes []string) {
			if rt == nil {
				return
			}
			if err := rt.SetBackends(nodes); err != nil {
				log.Printf("szrouter: membership change rejected: %v", err)
				return
			}
			log.Printf("szrouter: membership now %v", nodes)
		},
	})
	if err != nil {
		return err
	}
	hc, err := backendClient(o)
	if err != nil {
		return err
	}
	var listenerTLS = func() (ok bool, err error) {
		if o.tlsCert == "" && o.tlsKey == "" {
			if o.tlsClientCA != "" {
				return false, errors.New("-tls-client-ca requires -tls-cert and -tls-key")
			}
			return false, nil
		}
		if o.tlsCert == "" || o.tlsKey == "" {
			return false, errors.New("-tls-cert and -tls-key must both be set")
		}
		return true, nil
	}
	serveTLS, err := listenerTLS()
	if err != nil {
		return err
	}

	rt, err = fleet.New(fleet.Config{
		Backends:            watcher.Nodes(),
		Replicas:            o.replicas,
		Replication:         o.replication,
		DrainGrace:          o.drainGrace,
		AntiEntropyInterval: o.antiEntropy,
		BufferLimit:         o.bufferLimit,
		PollInterval:        o.poll,
		HTTPClient:          hc,
		CacheBytes:          o.cacheBytes,
		CacheEntryBytes:     o.cacheEntry,
		SlowThreshold:       time.Duration(o.slowMS) * time.Millisecond,
		TraceRingSize:       o.traceRing,
	})
	if err != nil {
		return err
	}
	watcher.Start()
	defer watcher.Stop()
	rt.Start()
	defer rt.Stop()

	hs := &http.Server{
		Addr:              o.addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          log.New(os.Stderr, "szrouter: ", log.LstdFlags),
	}
	if serveTLS {
		if hs.TLSConfig, err = tlsconf.Server(o.tlsCert, o.tlsKey, o.tlsClientCA); err != nil {
			return err
		}
	}
	errc := make(chan error, 1)
	go func() {
		if serveTLS {
			log.Printf("szrouter: listening on %s (tls), backends %v", o.addr, watcher.Nodes())
			errc <- hs.ListenAndServeTLS("", "")
			return
		}
		log.Printf("szrouter: listening on %s, backends %v", o.addr, watcher.Nodes())
		errc <- hs.ListenAndServe()
	}()

	hupc := make(chan os.Signal, 1)
	signal.Notify(hupc, syscall.SIGHUP)
	go func() {
		for range hupc {
			log.Printf("szrouter: SIGHUP: reloading membership")
			if err := watcher.Reload(); err != nil {
				log.Printf("szrouter: membership reload: %v", err)
			}
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("szrouter: %v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown incomplete: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("szrouter: drained cleanly")
		return nil
	}
}
