// Command szrouter fronts a fleet of szd daemons: it spreads
// /v1/compress, /v1/decompress, /v1/inspect, and the slab range
// endpoints across the backends by consistent hashing on stream
// identity, fails over to the next ring node when a backend sheds
// (429), drains (503), or is unreachable, and balances unbounded
// streams onto the least-loaded healthy node.
//
//	szrouter -addr :7070 -backends host1:7071,host2:7071,host3:7071
//
// Clients need no changes: `sz -remote <router>` and the Go client work
// against the router exactly as against a single daemon; backend
// rejections (including Retry-After) are relayed unchanged when the
// whole fleet is saturated. Tenant identity resolves at this edge: the
// X-Sz-Api-Key header is validated and mapped to its tenant before any
// backend work (malformed keys are 400 bad_tenant envelopes here),
// inbound X-Sz-Tenant spoofs are stripped, per-tenant request counts
// are exported as szrouter_tenant_requests_total, and GET /v1/limits
// aggregates the fleet's live QoS state across the backends. The full
// wire contract lives in internal/api and API.md.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr        = flag.String("addr", ":7070", "listen address")
		backends    = flag.String("backends", "", "comma-separated szd backends (host:port or URLs); required")
		poll        = flag.Duration("poll", 2*time.Second, "health-poll interval")
		replicas    = flag.Int("replicas", 0, "consistent-hash vnodes per backend (0 = 128)")
		bufferLimit = flag.Int("buffer-limit", 0, "replayable-body cap in bytes (0 = 4 MiB)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "response-cache budget for decode endpoints (0 = 64 MiB, -1 disables cache and coalescing)")
		cacheEntry  = flag.Int64("cache-entry-bytes", 0, "largest cacheable single response (0 = 16 MiB)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = disabled")
		slowMS      = flag.Int64("slow-ms", 0, "log requests slower than this many milliseconds with their stage breakdown (0 = disabled)")
		traceRing   = flag.Int("trace-ring", 0, "finished traces retained for /debug/traces (0 = 256)")
	)
	flag.Parse()
	servePprof(*pprofAddr)
	if err := run(*addr, *backends, *poll, *replicas, *bufferLimit, *cacheBytes, *cacheEntry, *slowMS, *traceRing); err != nil {
		fmt.Fprintln(os.Stderr, "szrouter:", err)
		os.Exit(1)
	}
}

// servePprof exposes the pprof handlers on their own listener when
// enabled; the routing mux serves only the in-memory trace ring at
// /debug/traces, never the pprof handlers.
func servePprof(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("szrouter: pprof listening on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("szrouter: pprof server: %v", err)
		}
	}()
}

func run(addr, backends string, poll time.Duration, replicas, bufferLimit int, cacheBytes, cacheEntry int64, slowMS int64, traceRing int) error {
	var nodes []string
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			nodes = append(nodes, b)
		}
	}
	rt, err := fleet.New(fleet.Config{
		Backends:        nodes,
		Replicas:        replicas,
		BufferLimit:     bufferLimit,
		PollInterval:    poll,
		CacheBytes:      cacheBytes,
		CacheEntryBytes: cacheEntry,
		SlowThreshold:   time.Duration(slowMS) * time.Millisecond,
		TraceRingSize:   traceRing,
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Stop()

	hs := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          log.New(os.Stderr, "szrouter: ", log.LstdFlags),
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("szrouter: listening on %s, backends %v", addr, nodes)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("szrouter: %v: shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown incomplete: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("szrouter: drained cleanly")
		return nil
	}
}
