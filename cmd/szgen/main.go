// Command szgen writes the synthetic ATM / APS / Hurricane data sets to
// disk as raw little-endian float32 files, for use with szc.
//
//	szgen -set ATM -scale 8 -o atm.f32
//	szgen -set Hurricane -scale 4 -o hur.f32
//	szgen -variant CDNUMC -scale 8 -o cdnumc.f32   # ATM named variable
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/grid"
)

func main() {
	var (
		set     = flag.String("set", "ATM", "data set: ATM | APS | Hurricane | HACC")
		variant = flag.String("variant", "", "ATM variable variant (FREQSH | SNOWHLND | CDNUMC)")
		scale   = flag.Int("scale", 8, "divide paper dims by this factor")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output file (raw little-endian float32); - for stdout")
	)
	flag.Parse()
	if err := run(*set, *variant, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "szgen:", err)
		os.Exit(1)
	}
}

func run(set, variant string, scale int, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("missing -o output file")
	}
	if scale < 1 {
		scale = 1
	}
	div := func(dims []int) []int {
		o := make([]int, len(dims))
		for i, d := range dims {
			o[i] = d / scale
			if o[i] < 8 {
				o[i] = 8
			}
		}
		return o
	}
	var a *grid.Array
	switch set {
	case "ATM":
		d := div(datagen.ATMDims)
		if variant != "" {
			a = datagen.ATMVariant(variant, d[0], d[1], seed)
		} else {
			a = datagen.ATM(d[0], d[1], seed)
		}
	case "APS":
		d := div(datagen.APSDims)
		a = datagen.APS(d[0], d[1], seed)
	case "Hurricane":
		d := div(datagen.HurricaneDims)
		a = datagen.Hurricane(d[0], d[1], d[2], seed)
	case "HACC":
		// 16M particles at scale 1, divided by the scale factor.
		n := 1 << 24 / scale
		if n < 1024 {
			n = 1024
		}
		a = datagen.HACC(n, seed)
	default:
		return fmt.Errorf("unknown -set %q (ATM|APS|Hurricane|HACC)", set)
	}
	var f *os.File
	if out == "-" {
		f = os.Stdout
	} else {
		var err error
		f, err = os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	if err := a.WriteRaw(f, grid.Float32); err != nil {
		return err
	}
	dims := ""
	for i, d := range a.Dims {
		if i > 0 {
			dims += "x"
		}
		dims += fmt.Sprint(d)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d float32 values, dims %s (use sz c -dims %s -dtype f32)\n",
		out, a.Len(), dims, dims)
	return nil
}
