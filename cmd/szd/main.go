// Command szd runs the compression daemon: the full codec registry
// (sz14, blocked, pwrel, gzip, fpzip, zfp, sz11, isabela) served over
// HTTP with streaming bodies, admission control, and metrics, so remote
// producers share one resource-governed compression fleet.
//
//	szd -addr :7071 -max-inflight-bytes $((1<<30))
//
// Compress a field from the command line (or use `sz -remote`):
//
//	curl --data-binary @field.f32 \
//	  'http://localhost:7071/v1/compress?codec=blocked&abs=1e-3&dims=100,500,500&dtype=f32' \
//	  -o field.szb
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503, new
// requests are rejected with 503, and in-flight streams get
// -drain-timeout to finish before the listener closes.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only via -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/tlsconf"
)

func main() {
	var (
		addr         = flag.String("addr", ":7071", "listen address")
		maxInflight  = flag.Int64("max-inflight-bytes", 0, "admission byte budget (0 = 1 GiB default, -1 = unlimited)")
		maxRequest   = flag.Int64("max-request-bytes", 0, "per-request body cap (0 = 1 GiB default, -1 = unlimited)")
		workers      = flag.Int("workers", 0, "worker-pool size (0 = 4 x GOMAXPROCS)")
		readTimeout  = flag.Duration("read-timeout", 0, "max duration reading a request, including the body (0 = none)")
		writeTimeout = flag.Duration("write-timeout", 0, "max duration writing a response (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight streams on shutdown")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty = disabled")
		storeDir     = flag.String("store-dir", "", "content-addressed container store directory; empty = store disabled")
		storeBytes   = flag.Int64("store-bytes", 4<<30, "store byte budget before LRU eviction (0 = unbounded)")
		prefStreams  = flag.Int("preferred-streams", 0, "interleaved stream count advertised in /v1/codecs (0 = 4)")
		slowMS       = flag.Int64("slow-ms", 0, "log requests slower than this many milliseconds with their stage breakdown (0 = disabled)")
		traceRing    = flag.Int("trace-ring", 0, "finished traces retained for /debug/traces (0 = 256)")
		qosInterval  = flag.Duration("qos-interval", time.Second, "QoS control-loop cadence adapting the admission budget and worker clamp (0 = fixed limits)")
		tenantWts    = flag.String("tenant-weights", "", "weighted-fair tenant shares as name=weight pairs, comma separated (e.g. acme=3,default=1); unlisted tenants weigh 1")
		tlsCert      = flag.String("tls-cert", "", "serve TLS with this PEM certificate (requires -tls-key)")
		tlsKey       = flag.String("tls-key", "", "PEM private key for -tls-cert")
		tlsClientCA  = flag.String("tls-client-ca", "", "require and verify client certificates signed by this PEM CA (mTLS); empty = no client certs")
	)
	flag.Parse()
	servePprof(*pprofAddr, "szd")
	weights, err := parseWeights(*tenantWts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "szd: -tenant-weights:", err)
		os.Exit(2)
	}
	tlsCfg, err := listenerTLS(*tlsCert, *tlsKey, *tlsClientCA)
	if err != nil {
		fmt.Fprintln(os.Stderr, "szd:", err)
		os.Exit(2)
	}
	if err := run(*addr, *maxInflight, *maxRequest, *workers, *readTimeout, *writeTimeout, *drainTimeout, *storeDir, *storeBytes, *prefStreams, *slowMS, *traceRing, *qosInterval, weights, tlsCfg); err != nil {
		fmt.Fprintln(os.Stderr, "szd:", err)
		os.Exit(1)
	}
}

// listenerTLS validates and builds the listener TLS config from the
// flag trio; nil config means plaintext.
func listenerTLS(cert, key, clientCA string) (*tls.Config, error) {
	if cert == "" && key == "" {
		if clientCA != "" {
			return nil, errors.New("-tls-client-ca requires -tls-cert and -tls-key")
		}
		return nil, nil
	}
	if cert == "" || key == "" {
		return nil, errors.New("-tls-cert and -tls-key must both be set")
	}
	return tlsconf.Server(cert, key, clientCA)
}

// parseWeights parses "name=weight,name=weight" into the tenant weight
// map. Weights must be positive; the zero map (no flag) leaves every
// tenant at weight 1.
func parseWeights(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, f := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad pair %q (want name=weight)", f)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q for tenant %q (want a positive number)", val, name)
		}
		out[name] = w
	}
	return out, nil
}

// servePprof exposes the pprof handlers on their own listener when
// enabled, so allocation and CPU profiles can be captured from a
// production daemon without widening the service surface: the main
// listener serves only the in-memory trace ring at /debug/traces, never
// the pprof handlers.
func servePprof(addr, name string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("%s: pprof listening on %s", name, addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("%s: pprof server: %v", name, err)
		}
	}()
}

func run(addr string, maxInflight, maxRequest int64, workers int, readTimeout, writeTimeout, drainTimeout time.Duration, storeDir string, storeBytes int64, prefStreams int, slowMS int64, traceRing int, qosInterval time.Duration, weights map[string]float64, tlsCfg *tls.Config) error {
	var st *store.Store
	if storeDir != "" {
		var err error
		if st, err = store.Open(storeDir, storeBytes); err != nil {
			return fmt.Errorf("opening store: %w", err)
		}
		snap := st.Stats()
		log.Printf("szd: store %s: %d containers, %d bytes (budget %d)", storeDir, snap.Entries, snap.Bytes, storeBytes)
	}
	s := server.New(server.Config{
		MaxInflightBytes: maxInflight,
		MaxRequestBytes:  maxRequest,
		Workers:          workers,
		Store:            st,
		PreferredStreams: prefStreams,
		SlowThreshold:    time.Duration(slowMS) * time.Millisecond,
		TraceRingSize:    traceRing,
		TenantWeights:    weights,
	})
	if qosInterval > 0 {
		stop := s.StartQoS(qosInterval)
		defer stop()
	}
	hs := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		TLSConfig:         tlsCfg,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          log.New(os.Stderr, "szd: ", log.LstdFlags),
	}

	errc := make(chan error, 1)
	go func() {
		if tlsCfg != nil {
			mode := "tls"
			if tlsCfg.ClientAuth == tls.RequireAndVerifyClientCert {
				mode = "mtls"
			}
			log.Printf("szd: listening on %s (%s)", addr, mode)
			// Certificates come from TLSConfig, so the file arguments
			// stay empty.
			errc <- hs.ListenAndServeTLS("", "")
			return
		}
		log.Printf("szd: listening on %s", addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("szd: %v: draining (grace %s)", sig, drainTimeout)
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain incomplete: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		log.Printf("szd: drained cleanly")
		return nil
	}
}
