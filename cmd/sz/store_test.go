package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/server"
	"repro/internal/store"
)

func newStoreDaemon(t *testing.T) (string, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{Store: st}).Handler())
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://"), st
}

// TestDigestDecodeCLI drives the content-addressed flow end to end:
// remote compress seeds the store, then `sz d -digest` reads the slab
// back with no input upload — both the raw path and the full decode.
func TestDigestDecodeCLI(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "out.szb")
	addr, st := newStoreDaemon(t)

	if err := cmdCompress([]string{"-codec", "blocked", "-dims", "16,20,12",
		"-dtype", "f32", "-abs", "1e-3", "-slab", "4", "-remote", addr, in, comp}); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Entries != 1 {
		t.Fatalf("store holds %d entries after remote compress, want 1", stats.Entries)
	}
	stream, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(stream)
	digest := hex.EncodeToString(sum[:])

	// Digest-referenced slab read vs the local slab decode.
	local := filepath.Join(dir, "slab_local.f32")
	if err := cmdDecompress([]string{"-slab", "1-2", comp, local}); err != nil {
		t.Fatal(err)
	}
	byDigest := filepath.Join(dir, "slab_digest.f32")
	if err := cmdDecompress([]string{"-slab", "1-2", "-remote", addr, "-digest", digest, byDigest}); err != nil {
		t.Fatal(err)
	}
	lb, _ := os.ReadFile(local)
	db, err := os.ReadFile(byDigest)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb) == 0 || !bytes.Equal(lb, db) {
		t.Fatalf("-digest slab read: %d bytes vs local %d bytes differ", len(db), len(lb))
	}

	// Full reconstruction by digest.
	full := filepath.Join(dir, "full_local.f32")
	if err := cmdDecompress([]string{comp, full}); err != nil {
		t.Fatal(err)
	}
	fullDigest := filepath.Join(dir, "full_digest.f32")
	if err := cmdDecompress([]string{"-remote", addr, "-digest", digest, fullDigest}); err != nil {
		t.Fatal(err)
	}
	fb, _ := os.ReadFile(full)
	fdb, err := os.ReadFile(fullDigest)
	if err != nil {
		t.Fatal(err)
	}
	if len(fb) == 0 || !bytes.Equal(fb, fdb) {
		t.Fatal("-digest full decode differs from local decode")
	}

	// -digest without -remote is a usage error.
	if err := cmdDecompress([]string{"-digest", digest, filepath.Join(dir, "x.f32")}); err == nil {
		t.Fatal("-digest without -remote accepted")
	}
}

// TestStreamsAutoAdoptsDaemonPreference: with -streams auto against a
// daemon advertising a preference, the container must carry that stream
// count.
func TestStreamsAutoAdoptsDaemonPreference(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{PreferredStreams: 2}).Handler())
	t.Cleanup(ts.Close)
	addr := strings.TrimPrefix(ts.URL, "http://")

	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "out.szb")
	if err := cmdCompress([]string{"-codec", "blocked", "-dims", "16,20,12",
		"-dtype", "f32", "-abs", "1e-3", "-remote", addr, in, comp}); err != nil {
		t.Fatal(err)
	}
	stream, err := os.ReadFile(comp)
	if err != nil {
		t.Fatal(err)
	}
	si, err := codec.SlabIndexOf(stream)
	if err != nil {
		t.Fatal(err)
	}
	if si.Streams != 2 {
		t.Fatalf("container streams = %d, want the daemon's preferred 2", si.Streams)
	}
}
