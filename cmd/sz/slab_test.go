package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestSlabDecodeLocalAndRemote is the CLI half of the slab acceptance
// criterion: `sz d -slab i` against a daemon must produce bytes
// identical to the local random-access decode of the same container.
func TestSlabDecodeLocalAndRemote(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "out.szb")
	if err := cmdCompress([]string{"-codec", "blocked", "-dims", "16,20,12",
		"-dtype", "f32", "-abs", "1e-3", "-slab", "4", in, comp}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	for _, spec := range []string{"0", "2", "1-3", "0-3"} {
		local := filepath.Join(dir, "slab_local.f32")
		remote := filepath.Join(dir, "slab_remote.f32")
		if err := cmdDecompress([]string{"-slab", spec, comp, local}); err != nil {
			t.Fatalf("local -slab %s: %v", spec, err)
		}
		if err := cmdDecompress([]string{"-slab", spec, "-remote", addr, comp, remote}); err != nil {
			t.Fatalf("remote -slab %s: %v", spec, err)
		}
		lb, err := os.ReadFile(local)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(remote)
		if err != nil {
			t.Fatal(err)
		}
		if len(lb) == 0 || !bytes.Equal(lb, rb) {
			t.Fatalf("-slab %s: local %d bytes vs remote %d bytes differ", spec, len(lb), len(rb))
		}
	}

	// Bad specs fail before touching the output file.
	if err := cmdDecompress([]string{"-slab", "9-2", comp, filepath.Join(dir, "x.f32")}); err == nil {
		t.Fatal("inverted slab spec accepted")
	}
	if err := cmdDecompress([]string{"-slab", "17", comp, filepath.Join(dir, "x.f32")}); err == nil {
		t.Fatal("out-of-range slab accepted")
	}
}
