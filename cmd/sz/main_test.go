package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/grid"
	"repro/internal/server"
)

// writeInput generates a small raw float32 field on disk and returns its
// path plus the array.
func writeInput(t *testing.T, dir string) (string, *grid.Array) {
	t.Helper()
	a := grid.New(16, 20, 12)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Sin(float64(i) * 0.02)))
	}
	path := filepath.Join(dir, "in.f32")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRaw(f, grid.Float32); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, a
}

func TestRoundTripThroughCLI(t *testing.T) {
	for _, codecName := range []string{"sz14", "blocked", "gzip"} {
		t.Run(codecName, func(t *testing.T) {
			dir := t.TempDir()
			in, a := writeInput(t, dir)
			comp := filepath.Join(dir, "out.sz")
			raw := filepath.Join(dir, "back.f32")

			args := []string{"-codec", codecName, "-dims", "16,20,12", "-dtype", "f32", "-abs", "1e-3", in, comp}
			if err := cmdCompress(args); err != nil {
				t.Fatal(err)
			}
			// Decompress with auto-detection for the self-describing
			// codecs; gzip needs the codec and dtype spelled out.
			dargs := []string{in, comp} // placeholder, replaced below
			if codecName == "gzip" {
				dargs = []string{"-codec", "gzip", "-dtype", "f32", comp, raw}
			} else {
				dargs = []string{comp, raw}
			}
			if err := cmdDecompress(dargs); err != nil {
				t.Fatal(err)
			}

			got, err := os.ReadFile(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != a.Len()*4 {
				t.Fatalf("raw output %d bytes, want %d", len(got), a.Len()*4)
			}
			back, err := grid.ReadRaw(bytes.NewReader(got), grid.Float32, a.Dims...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Data {
				if math.Abs(a.Data[i]-back.Data[i]) > 1e-3 {
					t.Fatalf("bound violated at %d", i)
				}
			}
			if err := cmdInspect([]string{comp}); err != nil {
				t.Fatalf("inspect: %v", err)
			}
		})
	}
}

func TestGzipCompressNeedsNoDims(t *testing.T) {
	dir := t.TempDir()
	in, a := writeInput(t, dir)
	comp := filepath.Join(dir, "out.gz")
	raw := filepath.Join(dir, "back.f32")
	if err := cmdCompress([]string{"-codec", "gzip", "-dtype", "f32", in, comp}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-codec", "gzip", comp, raw}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gzip roundtrip not lossless (%d vs %d bytes, n=%d)", len(got), len(want), a.Len())
	}
}

func TestCompressRejectsMissingBound(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	err := cmdCompress([]string{"-dims", "16,20,12", in, filepath.Join(dir, "x.sz")})
	if err == nil {
		t.Fatal("sz14 without a bound accepted")
	}
}

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	var buf bytes.Buffer
	done := make(chan struct{})
	go func() {
		io.Copy(&buf, r)
		close(done)
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	<-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return buf.String()
}

func TestInspectJSON(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	comp := filepath.Join(dir, "out.szb")
	if err := cmdCompress([]string{"-codec", "blocked", "-dims", "16,20,12", "-dtype", "f32", "-abs", "1e-3", in, comp}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return cmdInspect([]string{"-json", comp})
	})
	var si codec.StreamInfo
	if err := json.Unmarshal([]byte(out), &si); err != nil {
		t.Fatalf("inspect -json output is not JSON: %v\n%s", err, out)
	}
	if si.Codec != "blocked" || len(si.Dims) != 3 || si.Slabs == 0 {
		t.Errorf("inspect -json parsed to %+v", si)
	}
}

func TestUnknownCodecListsRegistered(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	err := cmdCompress([]string{"-codec", "bogus", "-dims", "16,20,12", "-abs", "1e-3", in, filepath.Join(dir, "x")})
	if err == nil {
		t.Fatal("unknown codec accepted")
	}
	for _, name := range []string{"sz14", "blocked", "gzip"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list codec %s", err, name)
		}
	}
	if _, statErr := os.Stat(filepath.Join(dir, "x")); statErr == nil {
		t.Error("unknown codec still created the output file")
	}
}

// TestRemoteRoundTrip drives the CLI against a real daemon: remote
// compression must be byte-identical to local, and remote decompression
// must restore the same raw bytes.
func TestRemoteRoundTrip(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	local := filepath.Join(dir, "local.szb")
	remote := filepath.Join(dir, "remote.szb")
	args := []string{"-codec", "blocked", "-dims", "16,20,12", "-dtype", "f32", "-abs", "1e-3"}
	if err := cmdCompress(append(args, in, local)); err != nil {
		t.Fatal(err)
	}
	if err := cmdCompress(append(append([]string{"-remote", addr}, args...), in, remote)); err != nil {
		t.Fatal(err)
	}
	lb, _ := os.ReadFile(local)
	rb, _ := os.ReadFile(remote)
	if !bytes.Equal(lb, rb) {
		t.Fatalf("remote compression differs from local (%d vs %d bytes)", len(rb), len(lb))
	}

	localRaw := filepath.Join(dir, "local.f32")
	remoteRaw := filepath.Join(dir, "remote.f32")
	if err := cmdDecompress([]string{local, localRaw}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-remote", addr, remote, remoteRaw}); err != nil {
		t.Fatal(err)
	}
	lr, _ := os.ReadFile(localRaw)
	rr, _ := os.ReadFile(remoteRaw)
	if !bytes.Equal(lr, rr) {
		t.Fatalf("remote reconstruction differs from local (%d vs %d bytes)", len(rr), len(lr))
	}

	// Remote inspect and codecs round out the surface.
	out := captureStdout(t, func() error {
		return cmdInspect([]string{"-remote", addr, "-json", remote})
	})
	var si codec.StreamInfo
	if err := json.Unmarshal([]byte(out), &si); err != nil {
		t.Fatalf("remote inspect -json: %v\n%s", err, out)
	}
	if si.Codec != "blocked" {
		t.Errorf("remote inspect codec %q", si.Codec)
	}
	out = captureStdout(t, func() error {
		return cmdCodecs([]string{"-remote", addr})
	})
	if !strings.Contains(out, "sz14") || !strings.Contains(out, "blocked") {
		t.Errorf("remote codecs output %q", out)
	}
}

// TestRemoteErrorKeepsOutputFile: a remote failure that produces no
// output (unknown codec on the daemon) must not truncate an existing
// output file — the file only opens on the first compressed byte.
func TestRemoteErrorKeepsOutputFile(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	addr := strings.TrimPrefix(ts.URL, "http://")

	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	out := filepath.Join(dir, "precious.szb")
	if err := os.WriteFile(out, []byte("precious bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdCompress([]string{"-remote", addr, "-codec", "bogus",
		"-dims", "16,20,12", "-dtype", "f32", "-abs", "1e-3", in, out})
	if err == nil {
		t.Fatal("remote unknown codec accepted")
	}
	got, rerr := os.ReadFile(out)
	if rerr != nil || string(got) != "precious bytes" {
		t.Errorf("pre-existing output clobbered: %q, %v", got, rerr)
	}
}
