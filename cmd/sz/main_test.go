package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/grid"
)

// writeInput generates a small raw float32 field on disk and returns its
// path plus the array.
func writeInput(t *testing.T, dir string) (string, *grid.Array) {
	t.Helper()
	a := grid.New(16, 20, 12)
	for i := range a.Data {
		a.Data[i] = float64(float32(math.Sin(float64(i) * 0.02)))
	}
	path := filepath.Join(dir, "in.f32")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRaw(f, grid.Float32); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, a
}

func TestRoundTripThroughCLI(t *testing.T) {
	for _, codecName := range []string{"sz14", "blocked", "gzip"} {
		t.Run(codecName, func(t *testing.T) {
			dir := t.TempDir()
			in, a := writeInput(t, dir)
			comp := filepath.Join(dir, "out.sz")
			raw := filepath.Join(dir, "back.f32")

			args := []string{"-codec", codecName, "-dims", "16,20,12", "-dtype", "f32", "-abs", "1e-3", in, comp}
			if err := cmdCompress(args); err != nil {
				t.Fatal(err)
			}
			// Decompress with auto-detection for the self-describing
			// codecs; gzip needs the codec and dtype spelled out.
			dargs := []string{in, comp} // placeholder, replaced below
			if codecName == "gzip" {
				dargs = []string{"-codec", "gzip", "-dtype", "f32", comp, raw}
			} else {
				dargs = []string{comp, raw}
			}
			if err := cmdDecompress(dargs); err != nil {
				t.Fatal(err)
			}

			got, err := os.ReadFile(raw)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != a.Len()*4 {
				t.Fatalf("raw output %d bytes, want %d", len(got), a.Len()*4)
			}
			back, err := grid.ReadRaw(bytes.NewReader(got), grid.Float32, a.Dims...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Data {
				if math.Abs(a.Data[i]-back.Data[i]) > 1e-3 {
					t.Fatalf("bound violated at %d", i)
				}
			}
			if err := cmdInspect([]string{comp}); err != nil {
				t.Fatalf("inspect: %v", err)
			}
		})
	}
}

func TestGzipCompressNeedsNoDims(t *testing.T) {
	dir := t.TempDir()
	in, a := writeInput(t, dir)
	comp := filepath.Join(dir, "out.gz")
	raw := filepath.Join(dir, "back.f32")
	if err := cmdCompress([]string{"-codec", "gzip", "-dtype", "f32", in, comp}); err != nil {
		t.Fatal(err)
	}
	if err := cmdDecompress([]string{"-codec", "gzip", comp, raw}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gzip roundtrip not lossless (%d vs %d bytes, n=%d)", len(got), len(want), a.Len())
	}
}

func TestCompressRejectsMissingBound(t *testing.T) {
	dir := t.TempDir()
	in, _ := writeInput(t, dir)
	err := cmdCompress([]string{"-dims", "16,20,12", in, filepath.Join(dir, "x.sz")})
	if err == nil {
		t.Fatal("sz14 without a bound accepted")
	}
}

func TestParseDims(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"100,500,500", 3, true},
		{"100x500x500", 3, true},
		{"1024", 1, true},
		{"0,5", 0, false},
		{"a,b", 0, false},
	} {
		dims, err := parseDims(tc.in)
		if tc.ok != (err == nil) || (err == nil && len(dims) != tc.want) {
			t.Errorf("parseDims(%q) = %v, %v", tc.in, dims, err)
		}
	}
}
