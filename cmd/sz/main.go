// Command sz streams raw binary floating-point arrays through any codec
// in the registry (sz14, blocked, pwrel, gzip, fpzip, zfp, sz11,
// isabela), file to file or pipe to pipe.
//
// Compress a 100x500x500 float32 field with a value-range-relative bound:
//
//	sz c -codec sz14 -rel 1e-4 -dims 100,500,500 in.f32 out.sz
//
// Stream an in-situ blocked container with bounded memory (absolute
// bound), straight from a generator:
//
//	szgen -set Hurricane -o - | sz c -codec blocked -abs 1e-3 -dims 100,500,500 - hur.szb
//
// Decompress (codec auto-detected from the stream magic):
//
//	sz d hur.szb restored.f32
//
// Inspect a stream without decompressing:
//
//	sz inspect hur.szb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	sz "repro"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/grid"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "c", "compress":
		err = cmdCompress(os.Args[2:])
	case "d", "decompress":
		err = cmdDecompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "codecs":
		fmt.Println(strings.Join(sz.Codecs(), "\n"))
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  sz c [flags] [in] [out]    compress raw samples (in/out default "-" = stdin/stdout)
  sz d [flags] [in] [out]    decompress a stream (codec auto-detected)
  sz inspect [in]            print stream metadata without decompressing
  sz codecs                  list registered codecs

compress flags:
  -codec name   codec to use (default sz14); see "sz codecs"
  -dims d0,d1   array dimensions, slowest first (required; "," or "x" separated)
  -dtype t      raw element type: f32|f64 (default f32)
  -abs eb       absolute error bound
  -rel eb       value-range-relative bound (pointwise epsilon for -codec pwrel)
  -layers n     SZ predictor layers (default %d)
  -m bits       SZ quantization code bits (default %d)
  -slab rows    blocked-container slab thickness (default auto)
  -workers n    blocked-container parallelism (default NumCPU)
  -zfprate r    ZFP fixed-rate bits/value (overrides bounds for -codec zfp)

decompress flags:
  -codec name   force a codec (needed for gzip, whose streams have no magic dims)
  -dtype t      element type for codecs that do not record it (default f64)
  -dims d0,d1   shape for non-self-describing codecs
`, sz.DefaultLayers, sz.DefaultIntervalBits)
}

// parseDims accepts "100,500,500" or "100x500x500".
func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	sep := ","
	if strings.Contains(s, "x") {
		sep = "x"
	}
	parts := strings.Split(s, sep)
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func parseDType(s string) (grid.DType, error) {
	switch s {
	case "f32", "float32":
		return grid.Float32, nil
	case "f64", "float64":
		return grid.Float64, nil
	}
	return 0, fmt.Errorf("bad -dtype %q (f32|f64)", s)
}

// openIn returns the input reader; "-" or "" means stdin.
func openIn(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// openOut returns the output writer; "-" or "" means stdout.
func openOut(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// countingWriter tracks bytes for the compression summary.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("sz c", flag.ExitOnError)
	var (
		codecName = fs.String("codec", "sz14", "codec name")
		dimsStr   = fs.String("dims", "", "dimensions, slowest first")
		dtypeStr  = fs.String("dtype", "f32", "raw element type: f32|f64")
		absB      = fs.Float64("abs", 0, "absolute error bound")
		relB      = fs.Float64("rel", 0, "value-range-relative error bound")
		layers    = fs.Int("layers", 0, "SZ predictor layers")
		mbits     = fs.Int("m", 0, "SZ quantization code bits")
		slab      = fs.Int("slab", 0, "blocked slab rows")
		workers   = fs.Int("workers", 0, "blocked workers")
		zfpRate   = fs.Float64("zfprate", 0, "ZFP fixed-rate bits/value")
	)
	fs.Parse(args)
	in, out := fs.Arg(0), fs.Arg(1)

	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	// gzip is shapeless (plain DEFLATE over the byte stream); every
	// other codec needs the array geometry to interpret the raw input.
	if len(dims) == 0 && *codecName != "gzip" {
		return fmt.Errorf("missing -dims (required to interpret the raw input)")
	}
	dt, err := parseDType(*dtypeStr)
	if err != nil {
		return err
	}
	p := sz.CodecParams{
		AbsBound:     *absB,
		RelBound:     *relB,
		Layers:       *layers,
		IntervalBits: *mbits,
		DType:        dt,
		Dims:         dims,
		SlabRows:     *slab,
		Workers:      *workers,
		Rate:         *zfpRate,
	}
	switch {
	case *absB > 0 && *relB > 0:
		p.Mode = sz.BoundAbsAndRel
	case *absB > 0:
		p.Mode = sz.BoundAbs
	case *relB > 0:
		p.Mode = sz.BoundRel
	case *codecName != "gzip" && *codecName != "fpzip" && *zfpRate <= 0:
		return fmt.Errorf("need -abs or -rel for codec %s", *codecName)
	}

	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	w, err := openOut(out)
	if err != nil {
		return err
	}
	cw := &countingWriter{w: w}
	zw, err := sz.NewCodecWriter(*codecName, cw, p)
	if err != nil {
		w.Close()
		return err
	}
	nIn, err := io.Copy(zw, bufio.NewReaderSize(r, 1<<20))
	if err == nil {
		err = zw.Close()
	}
	if err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sz c: %s: %d -> %d bytes (CF %.2f)\n",
		*codecName, nIn, cw.n, float64(nIn)/float64(cw.n))
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("sz d", flag.ExitOnError)
	var (
		codecName = fs.String("codec", "", "codec name (default: auto-detect)")
		dimsStr   = fs.String("dims", "", "dimensions for non-self-describing codecs")
		dtypeStr  = fs.String("dtype", "f64", "element type for codecs that do not record it")
		workers   = fs.Int("workers", 0, "decode parallelism where supported")
	)
	fs.Parse(args)
	in, out := fs.Arg(0), fs.Arg(1)

	dims, err := parseDims(*dimsStr)
	if err != nil {
		return err
	}
	dt, err := parseDType(*dtypeStr)
	if err != nil {
		return err
	}
	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	br := bufio.NewReaderSize(r, 1<<20)
	name := *codecName
	if name == "" {
		prefix, _ := br.Peek(4)
		c, err := codec.Detect(prefix)
		if err != nil {
			return fmt.Errorf("%w; pass -codec explicitly", err)
		}
		name = c.Name()
	}
	zr, err := sz.NewCodecReader(name, br, sz.CodecParams{Dims: dims, DType: dt, Workers: *workers})
	if err != nil {
		return err
	}
	defer zr.Close()
	w, err := openOut(out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	n, err := io.Copy(bw, zr)
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sz d: %s: %d raw bytes out\n", name, n)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("sz inspect", flag.ExitOnError)
	fs.Parse(args)
	r, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	stream, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	c, err := codec.Detect(stream)
	if err != nil {
		return err
	}
	fmt.Printf("codec:  %s\n", c.Name())
	fmt.Printf("bytes:  %d\n", len(stream))
	switch c.Name() {
	case "sz14":
		h, err := sz.Inspect(stream)
		if err != nil {
			return err
		}
		fmt.Printf("dims:   %v\n", h.Dims)
		fmt.Printf("dtype:  %v\n", h.DType)
		fmt.Printf("bound:  %g (abs)\n", h.AbsBound)
		fmt.Printf("layers: %d\n", h.Layers)
		fmt.Printf("m:      %d bits (%d intervals)\n", h.IntervalBits, (1<<h.IntervalBits)-1)
		fmt.Printf("escapes: %d of %d points\n", h.NumOutliers, h.N())
	case "blocked":
		ix, err := sz.InspectBlocked(stream)
		if err != nil {
			return err
		}
		ns := ix.NumSlabs()
		fmt.Printf("dims:   %v\n", ix.Dims)
		fmt.Printf("slabs:  %d x %d rows\n", ns, ix.SlabRows)
		minL, maxL := -1, 0
		for i := 0; i < ns; i++ {
			l := ix.Offsets[i+1] - ix.Offsets[i]
			if minL < 0 || l < minL {
				minL = l
			}
			if l > maxL {
				maxL = l
			}
		}
		fmt.Printf("body:   %d bytes (slab streams %d..%d bytes)\n", ix.Offsets[ns], minL, maxL)
		// The per-slab element type lives in each slab's own header.
		if h, _, err := core.ParseHeaderPrefix(stream[ix.HeaderLen:]); err == nil {
			fmt.Printf("dtype:  %v\n", h.DType)
			fmt.Printf("bound:  %g (abs)\n", h.AbsBound)
		}
	}
	return nil
}
