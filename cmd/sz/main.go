// Command sz streams raw binary floating-point arrays through any codec
// in the registry (sz14, blocked, pwrel, gzip, fpzip, zfp, sz11,
// isabela), file to file or pipe to pipe.
//
// Compress a 100x500x500 float32 field with a value-range-relative bound:
//
//	sz c -codec sz14 -rel 1e-4 -dims 100,500,500 in.f32 out.sz
//
// Stream an in-situ blocked container with bounded memory (absolute
// bound), straight from a generator:
//
//	szgen -set Hurricane -o - | sz c -codec blocked -abs 1e-3 -dims 100,500,500 - hur.szb
//
// Decompress (codec auto-detected from the stream magic):
//
//	sz d hur.szb restored.f32
//
// Inspect a stream without decompressing (add -json for scripts):
//
//	sz inspect hur.szb
//
// Every subcommand takes -remote <addr> to run against an szd daemon
// instead of compressing in-process:
//
//	sz c -remote localhost:7071 -codec blocked -abs 1e-3 -dims 100,500,500 in.f32 out.szb
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	sz "repro"
	"repro/internal/api"
	"repro/internal/blocked"
	"repro/internal/client"
	"repro/internal/codec"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "c", "compress":
		err = cmdCompress(os.Args[2:])
	case "d", "decompress":
		err = cmdDecompress(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "codecs":
		err = cmdCodecs(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  sz c [flags] [in] [out]    compress raw samples (in/out default "-" = stdin/stdout)
  sz d [flags] [in] [out]    decompress a stream (codec auto-detected)
  sz inspect [flags] [in]    print stream metadata without decompressing
  sz codecs [flags]          list registered codecs

compress flags:
  -codec name   codec to use (default sz14); see "sz codecs"
  -dims d0,d1   array dimensions, slowest first (required; "," or "x" separated)
  -dtype t      raw element type: f32|f64 (default f32)
  -abs eb       absolute error bound
  -rel eb       value-range-relative bound (pointwise epsilon for -codec pwrel)
  -layers n     SZ predictor layers (default %d)
  -m bits       SZ quantization code bits (default %d)
  -slab rows    blocked-container slab thickness (default auto)
  -workers n    blocked-container parallelism (default NumCPU)
  -zfprate r    ZFP fixed-rate bits/value (overrides bounds for -codec zfp)
  -streams k    interleaved Huffman sub-streams per slab for ILP decode
                (default auto = the daemon's advertised preference in -remote
                mode, else 4, for -codec blocked writing a v3 container;
                1 keeps the serial layout)
  -container v  blocked container version: auto|v2|v3 (v2 forces streams=1)
  -sharedcb     blocked v3: one codebook shared by every slab (one-shot only)

decompress flags:
  -codec name   force a codec (needed for gzip, whose streams have no magic dims)
  -dtype t      element type for codecs that do not record it (default f64)
  -dims d0,d1   shape for non-self-describing codecs
  -slab i|lo-hi random-access decode of just that slab range of a blocked container
  -digest d     read a container from the daemon's store by content address
                (remote only, no input upload; "sz c -remote" prints the digest)

inspect flags:
  -json         machine-readable output

every subcommand:
  -remote addr  run against an szd daemon at addr instead of in-process
  -timing       print the daemon's Server-Timing stage breakdown to stderr
                (remote only; includes be-* backend stages via szrouter)

c and d additionally (remote only):
  -tenant key   API key for per-tenant admission; the tenant is the
                key's prefix up to the first "." (no key = "default")
  -priority p   admission class: interactive (default) or batch
                (batch sheds first when the daemon is loaded)
`, sz.DefaultLayers, sz.DefaultIntervalBits)
}

// openIn returns the input reader; "-" or "" means stdin.
func openIn(path string) (io.ReadCloser, error) {
	if path == "" || path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

// openOut returns the output writer; "-" or "" means stdout. A real
// path opens lazily on the first written byte, so failures that produce
// no output — an unknown codec, an unreachable or overloaded daemon in
// -remote mode — never truncate a pre-existing file.
func openOut(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return nopWriteCloser{os.Stdout}, nil
	}
	return &lazyFileWriter{path: path}, nil
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

// lazyFileWriter creates its file on first Write. Compression always
// writes at least a header; a zero-byte decompression must call
// materialize on success so the output file exists (and is empty)
// rather than silently absent or stale.
type lazyFileWriter struct {
	path string
	f    *os.File
}

func (lw *lazyFileWriter) materialize() error {
	if lw.f != nil {
		return nil
	}
	f, err := os.Create(lw.path)
	if err != nil {
		return err
	}
	lw.f = f
	return nil
}

func (lw *lazyFileWriter) Write(p []byte) (int, error) {
	if lw.f == nil {
		f, err := os.Create(lw.path)
		if err != nil {
			return 0, err
		}
		lw.f = f
	}
	return lw.f.Write(p)
}

func (lw *lazyFileWriter) Close() error {
	if lw.f == nil {
		return nil
	}
	return lw.f.Close()
}

// countingWriter tracks bytes for the compression summary. discard
// (atomic: a blocked writer's emit goroutine may be mid-Write when the
// main goroutine aborts) swallows output once a run has failed, so
// cleanup-time flushes reach neither file nor stdout.
type countingWriter struct {
	w       io.Writer
	n       int64
	discard atomic.Bool
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.discard.Load() {
		return len(p), nil
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// inputSize stats a path for the remote admission hint; -1 for pipes.
func inputSize(path string) int64 {
	if path == "" || path == "-" {
		return -1
	}
	if fi, err := os.Stat(path); err == nil && fi.Mode().IsRegular() {
		return fi.Size()
	}
	return -1
}

// newRemoteClient builds the daemon client for a subcommand; with
// -timing, every response's Server-Timing breakdown (the daemon's stage
// spans, plus be-* backend stages merged by szrouter) prints to stderr.
// apiKey and priority thread the -tenant/-priority flags through to the
// daemon's per-tenant admission control.
func newRemoteClient(addr string, timing bool, apiKey, priority string) (*client.Client, error) {
	var opts []client.Option
	if timing {
		opts = append(opts, client.WithTiming(func(endpoint string, entries []obs.TimingEntry) {
			fmt.Fprintf(os.Stderr, "sz: %s timing:\n%s", endpoint, obs.FormatTimingTable(entries))
		}))
	}
	if apiKey != "" {
		opts = append(opts, client.WithTenant(apiKey))
	}
	if priority != "" {
		p, err := api.ParsePriority(priority)
		if err != nil {
			return nil, err
		}
		opts = append(opts, client.WithPriority(p))
	}
	return client.New(addr, opts...)
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("sz c", flag.ExitOnError)
	var (
		codecName = fs.String("codec", "sz14", "codec name")
		dimsStr   = fs.String("dims", "", "dimensions, slowest first")
		dtypeStr  = fs.String("dtype", "f32", "raw element type: f32|f64")
		absB      = fs.Float64("abs", 0, "absolute error bound")
		relB      = fs.Float64("rel", 0, "value-range-relative error bound")
		layers    = fs.Int("layers", 0, "SZ predictor layers")
		mbits     = fs.Int("m", 0, "SZ quantization code bits")
		slab      = fs.Int("slab", 0, "blocked slab rows")
		workers   = fs.Int("workers", 0, "blocked workers")
		zfpRate   = fs.Float64("zfprate", 0, "ZFP fixed-rate bits/value")
		streams   = fs.String("streams", "auto", "interleaved Huffman sub-streams per slab: auto|1..16")
		container = fs.String("container", "auto", "blocked container version: auto|v2|v3")
		sharedCB  = fs.Bool("sharedcb", false, "blocked v3: one shared codebook for all slabs")
		remote    = fs.String("remote", "", "szd daemon address")
		timing    = fs.Bool("timing", false, "print the daemon's Server-Timing stage breakdown to stderr")
		tenant    = fs.String("tenant", "", "API key for per-tenant admission (tenant = prefix up to the first '.')")
		priority  = fs.String("priority", "", "admission class: interactive (default) or batch (sheds first under load)")
	)
	fs.Parse(args)
	in, out := fs.Arg(0), fs.Arg(1)

	containerV := 0
	switch *container {
	case "", "auto":
	case "v2", "2":
		containerV = 2
	case "v3", "3":
		containerV = 3
	default:
		return fmt.Errorf("bad -container %q (auto|v2|v3)", *container)
	}
	var cl *client.Client
	if *remote != "" {
		var err error
		if cl, err = newRemoteClient(*remote, *timing, *tenant, *priority); err != nil {
			return err
		}
	}
	// auto = the ILP-friendly default for the blocked container: v3 with
	// four interleaved sub-streams per slab — unless the container is
	// pinned to v2, which only knows the serial layout. Everything else
	// keeps the single-stream layout unless asked. In remote mode the
	// daemon knows its own decode parallelism better than any client
	// constant, so auto adopts the preferred count it advertises in
	// /v1/codecs.
	nStreams := 0
	switch *streams {
	case "", "auto":
		if *codecName == "blocked" && containerV != 2 {
			nStreams = 4
			if cl != nil {
				if info, err := cl.CodecsInfo(context.Background()); err == nil && info.PreferredStreams > 0 {
					nStreams = info.PreferredStreams
				}
			}
		}
	default:
		n, err := strconv.Atoi(*streams)
		if err != nil || n < 1 {
			return fmt.Errorf("bad -streams %q (auto or a count >= 1)", *streams)
		}
		nStreams = n
	}

	// Validate the codec name up front so a typo fails with the list of
	// registered codecs before any file is created or byte is read.
	// (Remote mode defers to the daemon's registry.)
	if *remote == "" {
		if _, err := codec.Lookup(*codecName); err != nil {
			return err
		}
	}
	dims, err := codec.ParseDims(*dimsStr)
	if err != nil {
		return err
	}
	// gzip is shapeless (plain DEFLATE over the byte stream); every
	// other codec needs the array geometry to interpret the raw input.
	if len(dims) == 0 && *codecName != "gzip" {
		return fmt.Errorf("missing -dims (required to interpret the raw input)")
	}
	dt, err := codec.ParseDType(*dtypeStr)
	if err != nil {
		return err
	}
	p := sz.CodecParams{
		AbsBound:       *absB,
		RelBound:       *relB,
		Layers:         *layers,
		IntervalBits:   *mbits,
		DType:          dt,
		Dims:           dims,
		SlabRows:       *slab,
		Workers:        *workers,
		Rate:           *zfpRate,
		Streams:        nStreams,
		Container:      containerV,
		SharedCodebook: *sharedCB,
	}
	switch {
	case *absB > 0 && *relB > 0:
		p.Mode = sz.BoundAbsAndRel
	case *absB > 0:
		p.Mode = sz.BoundAbs
	case *relB > 0:
		p.Mode = sz.BoundRel
	case *codecName != "gzip" && *codecName != "fpzip" && *zfpRate <= 0:
		return fmt.Errorf("need -abs or -rel for codec %s", *codecName)
	}

	r, err := openIn(in)
	if err != nil {
		return err
	}
	defer r.Close()
	w, err := openOut(out)
	if err != nil {
		return err
	}
	cw := &countingWriter{w: w}
	var zw io.WriteCloser
	if cl != nil {
		zw, err = cl.NewWriter(context.Background(), cw, *codecName, p)
		if err != nil {
			w.Close()
			return err
		}
	} else {
		zw, err = sz.NewCodecWriter(*codecName, cw, p)
		if err != nil {
			w.Close()
			return err
		}
	}
	nIn, err := io.Copy(zw, bufio.NewReaderSize(r, 1<<20))
	if err == nil {
		err = zw.Close()
	} else {
		// The run failed: discard further output so no stray bytes land
		// in the file, then tear the codec writer down. A remote writer
		// gets Abort (dropping its unsent buffer instead of posting a
		// truncated payload); local writers need Close, which reaps the
		// blocked container's worker/emit goroutines.
		cw.discard.Store(true)
		if aw, ok := zw.(interface{ Abort() error }); ok {
			aw.Abort()
		} else {
			zw.Close()
		}
	}
	if err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sz c: %s: %d -> %d bytes (CF %.2f)\n",
		*codecName, nIn, cw.n, float64(nIn)/float64(cw.n))
	// A store-backed daemon content-addresses the finished container;
	// surface the digest so later reads can skip the upload entirely
	// (`sz d -remote ... -digest <digest>`).
	if dw, ok := zw.(client.Digester); ok && dw.Digest() != "" {
		fmt.Fprintf(os.Stderr, "sz c: digest %s\n", dw.Digest())
	}
	return nil
}

func cmdDecompress(args []string) error {
	fs := flag.NewFlagSet("sz d", flag.ExitOnError)
	var (
		codecName = fs.String("codec", "", "codec name (default: auto-detect)")
		dimsStr   = fs.String("dims", "", "dimensions for non-self-describing codecs")
		dtypeStr  = fs.String("dtype", "f64", "element type for codecs that do not record it")
		workers   = fs.Int("workers", 0, "decode parallelism where supported")
		slabSpec  = fs.String("slab", "", "random-access decode of a blocked container: slab index or lo-hi range")
		remote    = fs.String("remote", "", "szd daemon address")
		digest    = fs.String("digest", "", "content address of a container in the daemon's store (remote only): read by digest, no input upload")
		timing    = fs.Bool("timing", false, "print the daemon's Server-Timing stage breakdown to stderr")
		tenant    = fs.String("tenant", "", "API key for per-tenant admission (tenant = prefix up to the first '.')")
		priority  = fs.String("priority", "", "admission class: interactive (default) or batch (sheds first under load)")
	)
	fs.Parse(args)
	in, out := fs.Arg(0), fs.Arg(1)
	if *digest != "" {
		if *remote == "" {
			return fmt.Errorf("-digest needs -remote (the container lives in a daemon's store)")
		}
		// No input file travels: arg 0 is the output.
		in, out = "", fs.Arg(0)
	}

	dims, err := codec.ParseDims(*dimsStr)
	if err != nil {
		return err
	}
	dt, err := codec.ParseDType(*dtypeStr)
	if err != nil {
		return err
	}
	var br *bufio.Reader
	if *digest == "" {
		r, err := openIn(in)
		if err != nil {
			return err
		}
		defer r.Close()
		br = bufio.NewReaderSize(r, 1<<20)
	}
	p := sz.CodecParams{Dims: dims, DType: dt, Workers: *workers}

	var zr io.ReadCloser
	name := *codecName
	if *digest != "" {
		// Content-addressed read: the daemon serves off its store, the
		// client uploads nothing. Slab ranges come back as compressed
		// extents decoded locally — the backend does no decode work.
		cl, err := newRemoteClient(*remote, *timing, *tenant, *priority)
		if err != nil {
			return err
		}
		if *slabSpec != "" {
			lo, hi, err := codec.ParseSlabSpec(*slabSpec)
			if err != nil {
				return err
			}
			name = "blocked"
			ext, err := cl.ReadSlabExtent(context.Background(), *digest, lo, hi)
			if err != nil {
				return err
			}
			raw, err := ext.Decode()
			if err != nil {
				return err
			}
			zr = io.NopCloser(bytes.NewReader(raw))
		} else {
			name = "auto"
			if zr, err = cl.DecompressAt(context.Background(), *digest, *codecName, p); err != nil {
				return err
			}
		}
	} else if *slabSpec != "" {
		// Random access: only the requested slab range is reconstructed,
		// locally or by the daemon's /v1/slab endpoint.
		lo, hi, err := codec.ParseSlabSpec(*slabSpec)
		if err != nil {
			return err
		}
		name = "blocked"
		if *remote != "" {
			cl, err := newRemoteClient(*remote, *timing, *tenant, *priority)
			if err != nil {
				return err
			}
			if zr, err = cl.ReadSlab(context.Background(), br, inputSize(in), lo, hi); err != nil {
				return err
			}
		} else {
			stream, err := io.ReadAll(br)
			if err != nil {
				return err
			}
			arr, dt, err := blocked.DecompressSlabRange(stream, lo, hi)
			if err != nil {
				return err
			}
			var raw bytes.Buffer
			if err := arr.WriteRaw(&raw, dt); err != nil {
				return err
			}
			zr = io.NopCloser(&raw)
		}
	} else if *remote != "" {
		cl, err := newRemoteClient(*remote, *timing, *tenant, *priority)
		if err != nil {
			return err
		}
		zr, err = cl.NewReader(context.Background(), br, inputSize(in), *codecName, p)
		if err != nil {
			return err
		}
		if name == "" {
			name = "auto"
		}
	} else {
		if name == "" {
			prefix, _ := br.Peek(4)
			c, err := codec.Detect(prefix)
			if err != nil {
				return fmt.Errorf("%w; pass -codec explicitly", err)
			}
			name = c.Name()
		}
		zr, err = sz.NewCodecReader(name, br, p)
		if err != nil {
			return err
		}
	}
	defer zr.Close()
	w, err := openOut(out)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	n, err := io.Copy(bw, zr)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		// A legitimate zero-sample stream writes no bytes; the output
		// file must still come into existence on success.
		if lw, ok := w.(*lazyFileWriter); ok {
			err = lw.materialize()
		}
	}
	if err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sz d: %s: %d raw bytes out\n", name, n)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("sz inspect", flag.ExitOnError)
	var (
		asJSON = fs.Bool("json", false, "machine-readable output")
		remote = fs.String("remote", "", "szd daemon address")
	)
	fs.Parse(args)
	r, err := openIn(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()

	var si *codec.StreamInfo
	if *remote != "" {
		cl, err := client.New(*remote)
		if err != nil {
			return err
		}
		if si, err = cl.Inspect(context.Background(), r, inputSize(fs.Arg(0))); err != nil {
			return err
		}
	} else {
		stream, err := io.ReadAll(r)
		if err != nil {
			return err
		}
		if si, err = codec.InspectStream(stream); err != nil {
			return err
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(si, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(si.Text())
	return nil
}

func cmdCodecs(args []string) error {
	fs := flag.NewFlagSet("sz codecs", flag.ExitOnError)
	remote := fs.String("remote", "", "szd daemon address")
	fs.Parse(args)
	names := sz.Codecs()
	if *remote != "" {
		cl, err := client.New(*remote)
		if err != nil {
			return err
		}
		if names, err = cl.Codecs(context.Background()); err != nil {
			return err
		}
	}
	fmt.Println(strings.Join(names, "\n"))
	return nil
}
