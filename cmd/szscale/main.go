// Command szscale runs the Section VI parallel study: strong scalability
// of compression/decompression (Tables VII and VIII) and the I/O-time
// comparison (Fig. 10).
//
//	szscale              # measured up to NumCPU workers, modeled to 1024
//	szscale -scale 4     # larger per-file arrays
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		scale = flag.Int("scale", 8, "divide paper data-set dims by this factor")
		seed  = flag.Int64("seed", 20170529, "data generator seed")
	)
	flag.Parse()
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	for _, name := range []string{"tables7-8", "fig10"} {
		res, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "szscale: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(res)
	}
}
