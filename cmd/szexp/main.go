// Command szexp regenerates the tables and figures of the SZ-1.4 paper's
// evaluation on synthetic stand-in data sets.
//
//	szexp -exp all                # every experiment
//	szexp -exp fig6,table5        # a subset
//	szexp -list                   # show experiment ids
//	szexp -scale 4                # larger data (1/4 of paper dims)
//
// Each report prints the measured values next to the paper's published
// ones; see EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.Int("scale", 8, "divide paper data-set dims by this factor")
		seed    = flag.Int64("seed", 20170529, "data generator seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()
	if *list {
		for _, n := range experiments.Names {
			fmt.Println(n)
		}
		return
	}
	cfg := experiments.Config{Scale: *scale, Seed: *seed}
	names := experiments.Names
	if *expList != "all" {
		names = strings.Split(*expList, ",")
	}
	failed := false
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		res, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "szexp: %s: %v\n", name, err)
			failed = true
			continue
		}
		fmt.Printf("================ %s (%.1fs) ================\n%s\n",
			name, time.Since(start).Seconds(), res)
	}
	if failed {
		os.Exit(1)
	}
}
