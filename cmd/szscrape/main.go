// Command szscrape validates a Prometheus text exposition with the
// repository's strict parser (internal/obs): every sample must parse,
// every series must belong to a declared family, histograms must be
// internally consistent. Positional arguments name families that must
// additionally be present in the scrape, so CI can require the
// szd_qos_* surface in one call instead of grepping sample lines:
//
//	szscrape -url http://127.0.0.1:7071/metrics szd_qos_budget_bytes szd_qos_workers
//	curl -s http://127.0.0.1:7071/metrics | szscrape szd_qos_congested
//
// At least one required family must be named: a scrape of a dead or
// misrouted endpoint can be a syntactically valid empty exposition, so
// a bare invocation would pass vacuously. Callers that really only
// want syntax validation must opt in with -validate-only.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	url := flag.String("url", "", "scrape this URL; empty = read the exposition from stdin")
	timeout := flag.Duration("timeout", 10*time.Second, "scrape timeout")
	validateOnly := flag.Bool("validate-only", false, "accept a scrape with no required families (syntax validation only)")
	flag.Parse()
	if err := run(*url, *timeout, flag.Args(), *validateOnly); err != nil {
		fmt.Fprintln(os.Stderr, "szscrape:", err)
		os.Exit(1)
	}
}

func run(url string, timeout time.Duration, required []string, validateOnly bool) error {
	if len(required) == 0 && !validateOnly {
		return fmt.Errorf("no required families listed; an empty exposition would pass vacuously (use -validate-only for syntax-only checks)")
	}
	var src io.Reader = os.Stdin
	if url != "" {
		c := &http.Client{Timeout: timeout}
		resp, err := c.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("scrape returned %d", resp.StatusCode)
		}
		src = resp.Body
	}
	text, err := io.ReadAll(src)
	if err != nil {
		return err
	}
	exp, err := obs.ParseExposition(string(text))
	if err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	if err := obs.ValidateExposition(string(text)); err != nil {
		return fmt.Errorf("invalid exposition: %w", err)
	}
	for _, fam := range required {
		if _, ok := exp.Types[fam]; !ok {
			return fmt.Errorf("required family %q missing from scrape", fam)
		}
	}
	fmt.Printf("ok: %d families, %d samples\n", len(exp.Types), len(exp.Samples))
	return nil
}
