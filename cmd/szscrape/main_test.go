package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

const exposition = "# HELP foo_total test counter\n# TYPE foo_total counter\nfoo_total 1\n"

func scrapeServer(t *testing.T, body string) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunRequiresFamilies(t *testing.T) {
	url := scrapeServer(t, exposition)

	// A bare invocation must fail even against a valid exposition: an
	// empty scrape from a dead endpoint would otherwise pass vacuously.
	err := run(url, time.Second, nil, false)
	if err == nil {
		t.Fatal("run with no required families succeeded")
	}
	if !strings.Contains(err.Error(), "no required families") {
		t.Fatalf("error %q does not name the missing-families cause", err)
	}

	// -validate-only is the explicit opt-in for syntax-only checks.
	if err := run(url, time.Second, nil, true); err != nil {
		t.Fatalf("validate-only scrape failed: %v", err)
	}

	if err := run(url, time.Second, []string{"foo_total"}, false); err != nil {
		t.Fatalf("scrape with present family failed: %v", err)
	}
	if err := run(url, time.Second, []string{"missing_total"}, false); err == nil {
		t.Fatal("scrape with absent family succeeded")
	}
}
