// Command szc compresses and decompresses raw binary floating-point arrays
// with the SZ-1.4 algorithm.
//
// Compress a 1800×3600 float32 field with a value-range-relative bound:
//
//	szc -z -i data.f32 -o data.sz -dims 1800x3600 -dtype float32 -rel 1e-4
//
// Decompress:
//
//	szc -x -i data.sz -o restored.f32
//
// Inspect a stream header:
//
//	szc -info -i data.sz
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sz "repro"
	"repro/internal/grid"
)

func main() {
	var (
		doComp   = flag.Bool("z", false, "compress")
		doDecomp = flag.Bool("x", false, "decompress")
		doInfo   = flag.Bool("info", false, "print stream header and exit")
		in       = flag.String("i", "", "input file")
		out      = flag.String("o", "", "output file")
		dimsStr  = flag.String("dims", "", "dimensions, slowest first, e.g. 1800x3600")
		dtype    = flag.String("dtype", "float32", "element type of raw data: float32|float64")
		absB     = flag.Float64("abs", 0, "absolute error bound")
		relB     = flag.Float64("rel", 0, "value-range-relative error bound")
		layers   = flag.Int("layers", sz.DefaultLayers, "prediction layers n (1-8)")
		mbits    = flag.Int("m", sz.DefaultIntervalBits, "quantization code bits m (2-16); 2^m-1 intervals")
	)
	flag.Parse()
	if err := run(*doComp, *doDecomp, *doInfo, *in, *out, *dimsStr, *dtype, *absB, *relB, *layers, *mbits); err != nil {
		fmt.Fprintln(os.Stderr, "szc:", err)
		os.Exit(1)
	}
}

func run(doComp, doDecomp, doInfo bool, in, out, dimsStr, dtype string, absB, relB float64, layers, mbits int) error {
	if in == "" {
		return fmt.Errorf("missing -i input file")
	}
	switch {
	case doInfo:
		return info(in)
	case doComp:
		return compress(in, out, dimsStr, dtype, absB, relB, layers, mbits)
	case doDecomp:
		return decompress(in, out)
	}
	return fmt.Errorf("choose one of -z, -x, -info")
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -dims")
	}
	parts := strings.Split(s, "x")
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dimension %q", p)
		}
		dims[i] = v
	}
	return dims, nil
}

func parseDType(s string) (grid.DType, error) {
	switch s {
	case "float32":
		return grid.Float32, nil
	case "float64":
		return grid.Float64, nil
	}
	return 0, fmt.Errorf("bad -dtype %q (float32|float64)", s)
}

func compress(in, out, dimsStr, dtype string, absB, relB float64, layers, mbits int) error {
	if out == "" {
		return fmt.Errorf("missing -o output file")
	}
	dims, err := parseDims(dimsStr)
	if err != nil {
		return err
	}
	dt, err := parseDType(dtype)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := grid.ReadRaw(f, dt, dims...)
	if err != nil {
		return err
	}
	p := sz.Params{Layers: layers, IntervalBits: mbits, OutputType: dt}
	switch {
	case absB > 0 && relB > 0:
		p.Mode, p.AbsBound, p.RelBound = sz.BoundAbsAndRel, absB, relB
	case absB > 0:
		p.Mode, p.AbsBound = sz.BoundAbs, absB
	case relB > 0:
		p.Mode, p.RelBound = sz.BoundRel, relB
	default:
		return fmt.Errorf("set -abs and/or -rel error bound")
	}
	stream, st, err := sz.Compress(a, p)
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, stream, 0o644); err != nil {
		return err
	}
	fmt.Printf("compressed %d values: %d -> %d bytes (CF %.2f, %.2f bits/value, hit rate %.1f%%)\n",
		st.N, st.OriginalBytes, st.CompressedBytes, st.CompressionFactor, st.BitRate, st.HitRate*100)
	if st.Advice != 0 {
		fmt.Printf("adaptive hint: %s the interval count (-m)\n", st.Advice)
	}
	return nil
}

func decompress(in, out string) error {
	if out == "" {
		return fmt.Errorf("missing -o output file")
	}
	stream, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	a, h, err := sz.Decompress(stream)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := a.WriteRaw(f, h.DType); err != nil {
		return err
	}
	fmt.Printf("decompressed %d values (dims %v, %v, bound %g)\n", a.Len(), h.Dims, h.DType, h.AbsBound)
	return nil
}

func info(in string) error {
	stream, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	h, err := sz.Inspect(stream)
	if err != nil {
		return err
	}
	fmt.Printf("SZ-Go stream v%d\n  dims: %v (%d values, %v)\n  abs bound: %g\n  layers: %d\n  intervals: %d (m=%d)\n  outliers: %d (%.2f%%)\n",
		h.Version, h.Dims, h.N(), h.DType, h.AbsBound, h.Layers,
		(1<<h.IntervalBits)-1, h.IntervalBits, h.NumOutliers,
		float64(h.NumOutliers)/float64(h.N())*100)
	return nil
}
