package sz_test

import (
	"math"
	"testing"

	sz "repro"
	"repro/internal/datagen"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	a := datagen.ATM(90, 120, 3)
	stream, stats, err := sz.Compress(a, sz.Params{
		Mode:       sz.BoundRel,
		RelBound:   1e-4,
		OutputType: sz.Float32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CompressionFactor < 2 {
		t.Fatalf("CF = %v, want > 2 at eb_rel=1e-4", stats.CompressionFactor)
	}
	out, h, err := sz.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-out.Data[i]) > h.AbsBound {
			t.Fatalf("bound violated at %d", i)
		}
	}
	sum, err := sz.Evaluate(a, out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MaxRelErr > 1e-4 {
		t.Fatalf("max relative error %v exceeds 1e-4", sum.MaxRelErr)
	}
	if sum.Pearson < 0.99999 {
		t.Fatalf("correlation %v below five nines", sum.Pearson)
	}
}

func TestPublicAPIFromFloat32s(t *testing.T) {
	vals := make([]float32, 400)
	for i := range vals {
		vals[i] = float32(math.Sin(float64(i) * 0.05))
	}
	a, err := sz.FromFloat32s(vals, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	stream, _, err := sz.Compress(a, sz.Params{Mode: sz.BoundAbs, AbsBound: 1e-3, OutputType: sz.Float32})
	if err != nil {
		t.Fatal(err)
	}
	h, err := sz.Inspect(stream)
	if err != nil {
		t.Fatal(err)
	}
	if h.DType != sz.Float32 || h.Dims[0] != 20 {
		t.Fatalf("header %+v", h)
	}
}

func TestPublicAPIProbe(t *testing.T) {
	a := datagen.ATM(60, 60, 4)
	hr, err := sz.ProbeHitRates(a, sz.Params{Mode: sz.BoundRel, RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if hr.Orig <= 0 || hr.Decomp <= 0 {
		t.Fatalf("rates %+v", hr)
	}
}

func TestEvaluateShapeMismatch(t *testing.T) {
	if _, err := sz.Evaluate(sz.NewArray(2, 2), sz.NewArray(4)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
