package sz_test

// Integration tests crossing module boundaries: every lossy compressor
// against every synthetic data set, corruption robustness sweeps, 4D
// pipelines, and blocked-vs-core consistency.

import (
	"math"
	"testing"

	sz "repro"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/grid"
	"repro/internal/isabela"
	"repro/internal/metrics"
	"repro/internal/sz11"
	"repro/internal/zfp"
)

// integrationSets returns small instances of the three paper data sets.
func integrationSets() []datagen.Set {
	return datagen.StandardSets(datagen.Scale{Factor: 32, Seed: 99})
}

func TestAllLossyCompressorsRespectBounds(t *testing.T) {
	for _, set := range integrationSets() {
		a := set.Gen()
		_, _, rng := a.Range()
		for _, rel := range []float64{1e-2, 1e-4} {
			eb := rel * rng
			t.Run(set.Name, func(t *testing.T) {
				// SZ-1.4
				stream, _, err := core.Compress(a, core.Params{Mode: core.BoundAbs, AbsBound: eb, OutputType: set.DType})
				if err != nil {
					t.Fatal(err)
				}
				out, _, err := core.Decompress(stream)
				if err != nil {
					t.Fatal(err)
				}
				if e := metrics.MaxAbsError(a.Data, out.Data); e > eb {
					t.Fatalf("SZ-1.4: max err %g > %g", e, eb)
				}
				// SZ-1.1
				s11, _, err := sz11.Compress(a, sz11.Params{AbsBound: eb, OutputType: set.DType})
				if err != nil {
					t.Fatal(err)
				}
				out11, err := sz11.Decompress(s11)
				if err != nil {
					t.Fatal(err)
				}
				if e := metrics.MaxAbsError(a.Data, out11.Data); e > eb {
					t.Fatalf("SZ-1.1: max err %g > %g", e, eb)
				}
				// ZFP (normal-range data: the bound must hold)
				zs, _, err := zfp.Compress(a, zfp.Params{Mode: zfp.FixedAccuracy, Tolerance: eb, DType: set.DType})
				if err != nil {
					t.Fatal(err)
				}
				zout, err := zfp.Decompress(zs)
				if err != nil {
					t.Fatal(err)
				}
				if e := metrics.MaxAbsError(a.Data, zout.Data); e > eb {
					t.Fatalf("ZFP: max err %g > %g", e, eb)
				}
				// ISABELA (may legitimately refuse tight bounds)
				is, _, err := isabela.Compress(a, isabela.Params{AbsBound: eb, OutputType: set.DType, Window: 256})
				if err == nil {
					iout, err := isabela.Decompress(is)
					if err != nil {
						t.Fatal(err)
					}
					if e := metrics.MaxAbsError(a.Data, iout.Data); e > eb {
						t.Fatalf("ISABELA: max err %g > %g", e, eb)
					}
				}
			})
		}
	}
}

func TestSZBeatsSZ11OnPaperSets(t *testing.T) {
	// The version-over-version claim: SZ-1.4's CF exceeds SZ-1.1's on all
	// three data sets at the reference bound.
	for _, set := range integrationSets() {
		a := set.Gen()
		_, _, rng := a.Range()
		eb := 1e-4 * rng
		s14, st14, err := core.Compress(a, core.Params{Mode: core.BoundAbs, AbsBound: eb, OutputType: set.DType})
		if err != nil {
			t.Fatal(err)
		}
		_, st11, err := sz11.Compress(a, sz11.Params{AbsBound: eb, OutputType: set.DType})
		if err != nil {
			t.Fatal(err)
		}
		if st14.CompressionFactor <= st11.CompressionFactor {
			t.Fatalf("%s: SZ-1.4 CF %.2f <= SZ-1.1 CF %.2f",
				set.Name, st14.CompressionFactor, st11.CompressionFactor)
		}
		_ = s14
	}
}

func TestTruncationNeverPanics(t *testing.T) {
	a := datagen.ATM(40, 50, 5)
	stream, _, err := core.Compress(a, core.Params{Mode: core.BoundRel, RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	// Every possible truncation must return an error, not panic or
	// silently succeed.
	for k := 0; k < len(stream); k += 7 {
		if _, _, err := core.Decompress(stream[:k]); err == nil {
			t.Fatalf("truncation at %d accepted", k)
		}
	}
}

func TestBitFlipsDetected(t *testing.T) {
	a := datagen.ATM(30, 30, 6)
	stream, _, err := core.Compress(a, core.Params{Mode: core.BoundRel, RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(stream); pos += 11 {
		bad := append([]byte(nil), stream...)
		bad[pos] ^= 0x10
		if _, _, err := core.Decompress(bad); err == nil {
			t.Fatalf("bit flip at byte %d undetected", pos)
		}
	}
}

func Test4DPipeline(t *testing.T) {
	// 4D (e.g. time × z × y × x) exercises the generic predictor path.
	a := grid.New(5, 6, 7, 8)
	for ti := 0; ti < 5; ti++ {
		for z := 0; z < 6; z++ {
			for y := 0; y < 7; y++ {
				for x := 0; x < 8; x++ {
					v := math.Sin(float64(ti)*0.5) + math.Cos(float64(z)*0.4) +
						math.Sin(float64(y)*0.3)*math.Cos(float64(x)*0.2)
					a.Set(v, ti, z, y, x)
				}
			}
		}
	}
	for _, layers := range []int{1, 2} {
		p := sz.Params{Mode: sz.BoundAbs, AbsBound: 1e-4, Layers: layers}
		stream, st, err := sz.Compress(a, p)
		if err != nil {
			t.Fatal(err)
		}
		out, h, err := sz.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		if e := metrics.MaxAbsError(a.Data, out.Data); e > h.AbsBound {
			t.Fatalf("4D layers=%d: max err %g > %g", layers, e, h.AbsBound)
		}
		if st.CompressionFactor < 2 {
			t.Fatalf("4D smooth data CF %.2f too low", st.CompressionFactor)
		}
	}
}

func TestBlockedMatchesCoreBound(t *testing.T) {
	a := datagen.APS(80, 80, 7)
	p := sz.BlockedParams{
		Core:     core.Params{Mode: core.BoundRel, RelBound: 1e-4, OutputType: grid.Float32},
		SlabRows: 16,
	}
	stream, st, err := sz.CompressBlocked(a, p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sz.DecompressBlocked(stream, sz.BlockedParams{})
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.MaxAbsError(a.Data, out.Data); e > st.EffAbsBound {
		t.Fatalf("blocked: max err %g > %g", e, st.EffAbsBound)
	}
}

func TestRecompressionStability(t *testing.T) {
	// Repeated compress/decompress cycles with the same bound must
	// converge: after the first cycle, values sit on interval centres, so
	// subsequent cycles are nearly idempotent and errors do not accumulate
	// beyond 2x the bound relative to the ORIGINAL data.
	a := datagen.ATM(40, 60, 8)
	_, _, rng := a.Range()
	eb := 1e-3 * rng
	cur := a
	for cycle := 0; cycle < 4; cycle++ {
		stream, _, err := core.Compress(cur, core.Params{Mode: core.BoundAbs, AbsBound: eb})
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := core.Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		cur = out
	}
	if e := metrics.MaxAbsError(a.Data, cur.Data); e > 2*eb {
		t.Fatalf("4-cycle drift %g exceeds 2x bound %g", e, 2*eb)
	}
}

func TestQualityMetricsAgreeAcrossPaths(t *testing.T) {
	// sz.Evaluate must agree with direct metrics computation.
	a := datagen.Hurricane(10, 20, 20, 9)
	stream, _, err := sz.Compress(a, sz.Params{Mode: sz.BoundRel, RelBound: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := sz.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sz.Evaluate(a, out)
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics.PSNR(a.Data, out.Data); math.Abs(got-sum.PSNR) > 1e-9 {
		t.Fatalf("PSNR mismatch: %v vs %v", got, sum.PSNR)
	}
	if got := metrics.RMSE(a.Data, out.Data); math.Abs(got-sum.RMSE) > 1e-12 {
		t.Fatalf("RMSE mismatch: %v vs %v", got, sum.RMSE)
	}
}

func TestHACC1DWorkload(t *testing.T) {
	// The intro's motivating workload: 1D particle coordinates. Quasi-sorted
	// halo-clustered positions compress with an error bound while the
	// reconstruction stays inside the simulation box modulo the bound.
	a := datagen.HACC(1<<16, 11)
	_, _, rng := a.Range()
	// Particle positions are far rougher than mesh fields; cosmology
	// deployments of SZ use correspondingly looser bounds (~1e-2 of the
	// box is the scale HACC studies quote).
	eb := 1e-2 * rng
	stream, st, err := core.Compress(a, core.Params{Mode: core.BoundAbs, AbsBound: eb, OutputType: grid.Float32})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := core.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.MaxAbsError(a.Data, out.Data); e > eb {
		t.Fatalf("HACC: max err %g > %g", e, eb)
	}
	if st.CompressionFactor < 1.2 {
		t.Fatalf("HACC CF %.2f should beat raw storage", st.CompressionFactor)
	}
	for i, v := range out.Data {
		if v < -eb || v >= 256+eb {
			t.Fatalf("particle %d left the box: %v", i, v)
		}
	}
}
